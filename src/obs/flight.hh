/**
 * @file
 * FlightRecorder — the process black box, dumped when something dies.
 *
 * A bounded in-memory window of what the process was doing (recent log
 * lines via a Logger tap, free-form notes, provider snapshots such as
 * the serve job table, the full metrics registry, and the trace rings)
 * serialised as one JSON document when:
 *
 *   - fatal()/panic() fire (the obs fatal hook, armed by arm()),
 *   - a fatal signal arrives (armSignals(): SIGSEGV/SIGABRT/...),
 *   - the stall watchdog flags a job (StallWatchdog config),
 *   - a caller asks (the DUMP verb of abcd_serve).
 *
 * Dump format (stable keys, all content self-describing):
 *
 *   { "reason": "...", "captured_at_micros": T,
 *     "notes":   [ {"ts_micros": T, "text": "..."}, ... ],
 *     "log":     [ "raw log lines, oldest first", ... ],
 *     "providers": { "<name>": <provider JSON>, ... },
 *     "metrics": { "counters": {...}, "gauges": {...},
 *                  "histograms": { "<name>": {count,sum,min,max,mean,
 *                                             p50,p99, exemplar...} } },
 *     "trace":   { "traceEvents": [...] } }   // Chrome trace, loadable
 *
 * Providers run during the dump *without* the recorder mutex, so they
 * may take their own locks (the serve provider takes the JobManager
 * mutex); they must return valid JSON.  A re-entrancy latch makes a
 * fault inside a dump (or a fatal raised by a provider) fall through
 * instead of recursing.
 *
 * Built only with GRAPHABCD_OBS_ENABLED=1; the OFF build's call sites
 * go through the obs.hh facade no-ops and this header is not included.
 */

#ifndef GRAPHABCD_OBS_FLIGHT_HH
#define GRAPHABCD_OBS_FLIGHT_HH

#ifndef GRAPHABCD_OBS_ENABLED
#define GRAPHABCD_OBS_ENABLED 1
#endif

#if GRAPHABCD_OBS_ENABLED

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace graphabcd {
namespace obs {

/** Process-wide black box (see file comment). */
class FlightRecorder
{
  public:
    /** The one recorder the hooks and the facade talk to. */
    static FlightRecorder &global();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Arm automatic dumps: remember the default dump path, install the
     * Logger tap (recent-log window) and the fatal hook.  Re-arming
     * replaces the path.
     */
    void arm(std::string default_path);

    /** Remove the tap/hook and forget the path (tests). */
    void disarm();

    bool armed() const;
    std::string armedPath() const;

    /**
     * Install best-effort handlers for fatal signals (SIGSEGV, SIGABRT,
     * SIGBUS, SIGFPE, SIGILL) that dump to the armed path, then restore
     * the default disposition and re-raise.  Not async-signal-safe in
     * the strict sense — the process is dying anyway, and a partial
     * dump beats none.  Call after arm().
     */
    void armSignals();

    /** Append a free-form note to the bounded window. */
    void note(const char *component, std::string text);

    /**
     * Register a named snapshot provider; its return value is embedded
     * verbatim under providers.<name>, so it must be valid JSON.
     * Called outside the recorder mutex during dumps.
     * @return a token for removeProvider (providers whose closures
     *         capture dying objects must deregister first).
     */
    std::uint64_t addProvider(std::string name,
                              std::function<std::string()> provider);

    void removeProvider(std::uint64_t token);

    /** Serialise the black box (reason included) to a JSON string. */
    std::string renderJson(const std::string &reason);

    /**
     * Dump to an explicit path (works without arm()).
     * @return whether the file was written.
     */
    bool dump(const std::string &path, const std::string &reason);

    /** Dump to the armed path; no-op (false) when not armed. */
    bool dumpIfArmed(const std::string &reason);

  private:
    FlightRecorder() = default;

    struct Note
    {
        double tsMicros;
        std::string text;
    };

    struct Provider
    {
        std::uint64_t token;
        std::string name;
        std::function<std::string()> fn;
    };

    static constexpr std::size_t kMaxNotes = 128;
    static constexpr std::size_t kMaxLogLines = 256;

    mutable std::mutex mtx_;
    bool armed_ = false;
    std::string path_;
    std::deque<Note> notes_;
    std::deque<std::string> logLines_;
    std::vector<Provider> providers_;
    std::uint64_t nextToken_ = 1;
    std::atomic<bool> dumping_{false};   //!< re-entrancy latch
};

} // namespace obs
} // namespace graphabcd

#endif // GRAPHABCD_OBS_ENABLED

#endif // GRAPHABCD_OBS_FLIGHT_HH
