file(REMOVE_RECURSE
  "CMakeFiles/abcd_runtime.dir/thread_pool.cc.o"
  "CMakeFiles/abcd_runtime.dir/thread_pool.cc.o.d"
  "libabcd_runtime.a"
  "libabcd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
