#include "graph/edge_list.hh"

#include <algorithm>

#include "support/logging.hh"

namespace graphabcd {

EdgeList::EdgeList(VertexId num_vertices, std::vector<Edge> edge_vec)
    : nVertices(num_vertices), edges_(std::move(edge_vec))
{
    for (const Edge &e : edges_) {
        GRAPHABCD_ASSERT(e.src < nVertices && e.dst < nVertices,
                         "edge endpoint outside the vertex id space");
    }
}

void
EdgeList::addEdge(VertexId src, VertexId dst, float weight)
{
    GRAPHABCD_ASSERT(src < nVertices && dst < nVertices,
                     "edge endpoint outside the vertex id space");
    edges_.emplace_back(src, dst, weight);
}

void
EdgeList::normalize(bool dedup)
{
    std::sort(edges_.begin(), edges_.end(),
              [](const Edge &a, const Edge &b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
    if (dedup) {
        auto last = std::unique(edges_.begin(), edges_.end(),
                                [](const Edge &a, const Edge &b) {
                                    return a.src == b.src && a.dst == b.dst;
                                });
        edges_.erase(last, edges_.end());
    }
}

void
EdgeList::removeSelfLoops()
{
    auto last = std::remove_if(edges_.begin(), edges_.end(),
                               [](const Edge &e) { return e.src == e.dst; });
    edges_.erase(last, edges_.end());
}

EdgeList
EdgeList::reversed() const
{
    EdgeList out(nVertices);
    out.edges_.reserve(edges_.size());
    for (const Edge &e : edges_)
        out.edges_.emplace_back(e.dst, e.src, e.weight);
    return out;
}

EdgeList
EdgeList::symmetrized() const
{
    EdgeList out(nVertices);
    out.edges_.reserve(edges_.size() * 2);
    for (const Edge &e : edges_) {
        out.edges_.emplace_back(e.src, e.dst, e.weight);
        if (e.src != e.dst)
            out.edges_.emplace_back(e.dst, e.src, e.weight);
    }
    out.normalize(true);
    return out;
}

std::vector<std::uint32_t>
EdgeList::outDegrees() const
{
    std::vector<std::uint32_t> deg(nVertices, 0);
    for (const Edge &e : edges_)
        deg[e.src]++;
    return deg;
}

std::vector<std::uint32_t>
EdgeList::inDegrees() const
{
    std::vector<std::uint32_t> deg(nVertices, 0);
    for (const Edge &e : edges_)
        deg[e.dst]++;
    return deg;
}

} // namespace graphabcd
