file(REMOVE_RECURSE
  "libabcd_graph.a"
)
