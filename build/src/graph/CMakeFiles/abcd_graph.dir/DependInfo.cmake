
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr.cc" "src/graph/CMakeFiles/abcd_graph.dir/csr.cc.o" "gcc" "src/graph/CMakeFiles/abcd_graph.dir/csr.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "src/graph/CMakeFiles/abcd_graph.dir/datasets.cc.o" "gcc" "src/graph/CMakeFiles/abcd_graph.dir/datasets.cc.o.d"
  "/root/repo/src/graph/edge_list.cc" "src/graph/CMakeFiles/abcd_graph.dir/edge_list.cc.o" "gcc" "src/graph/CMakeFiles/abcd_graph.dir/edge_list.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/abcd_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/abcd_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/abcd_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/abcd_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/graph/CMakeFiles/abcd_graph.dir/partition.cc.o" "gcc" "src/graph/CMakeFiles/abcd_graph.dir/partition.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/abcd_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/abcd_graph.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/abcd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
