#include "serve/runner.hh"

#include <atomic>

#include "algorithms/extras.hh"
#include "algorithms/label_propagation.hh"
#include "algorithms/pagerank.hh"
#include "algorithms/sssp.hh"
#include "core/accum_engine.hh"
#include "core/async_engine.hh"
#include "core/engine.hh"
#include "fragment/engine.hh"
#include "harp/system.hh"
#include "runtime/executor.hh"
#include "support/fingerprint.hh"

namespace graphabcd {

namespace {

/** Translate a simulator report into the common EngineReport shape. */
EngineReport
fromSimReport(const SimReport &sim)
{
    EngineReport report;
    report.epochs = sim.epochs;
    report.blockUpdates = sim.blockUpdates;
    report.vertexUpdates = sim.vertexUpdates;
    report.edgeTraversals = sim.edgeTraversals;
    report.scatterWrites = sim.scatterWrites;
    report.converged = sim.converged;
    report.stopped = sim.stopped;
    report.seconds = sim.hostSeconds;
    return report;
}

template <typename Program>
RunOutcome
runWith(const BlockPartition &g, Program program, const JobRequest &req)
{
    RunOutcome out;
    if (req.engine == "serial") {
        SerialEngine<Program> engine(g, program, req.options);
        out.report = engine.run(out.values);
    } else if (req.engine == "async") {
        if constexpr (std::atomic<
                          typename Program::Value>::is_always_lock_free) {
            AsyncEngine<Program> engine(g, program, req.options);
            out.report = engine.run(out.values);
        } else {
            out.error = "algorithm '" + req.algo +
                        "' is not lock-free atomic; use engine=serial";
        }
    } else if (req.engine == "fragment") {
        FragmentEngine<Program> engine(g, program, req.options);
        out.report = engine.run(out.values);
    } else if (req.engine == "sim") {
        HarpSystem<Program> system(g, program, req.options, HarpConfig{});
        out.report = fromSimReport(system.run(out.values));
    } else {
        out.error = "unknown engine '" + req.engine + "'";
    }
    return out;
}

/** engine=accum: the accumulative programs are separate types, so the
 *  algo dispatch is separate from runWith's. */
template <typename Program>
RunOutcome
runAccum(const BlockPartition &g, Program program, const JobRequest &req)
{
    RunOutcome out;
    AccumEngine<Program> engine(g, std::move(program), req.options);
    out.report = engine.run(out.values);
    return out;
}

RunOutcome
runAccumJob(const BlockPartition &g, const JobRequest &req)
{
    if (req.algo == "pr")
        return runAccum(g, PageRankAccumProgram(), req);
    if (req.algo == "sssp")
        return runAccum(g, SsspAccumProgram(req.source), req);
    if (req.algo == "bfs")
        return runAccum(g, BfsAccumProgram(req.source), req);
    if (req.algo == "cc")
        return runAccum(g, CcAccumProgram(), req);
    RunOutcome out;
    out.error = "algorithm '" + req.algo +
                "' has no accumulative (delta) form; use another engine";
    return out;
}

/** Algorithms whose fixpoint depends on JobRequest::source. */
bool
algoUsesSource(const std::string &algo)
{
    return algo == "sssp" || algo == "bfs" || algo == "ppr";
}

} // namespace

RunOutcome
runAnalyticsJob(const BlockPartition &g, const JobRequest &req,
                std::shared_ptr<Executor> executor)
{
    // The pool is an execution resource, not a semantic option, so it
    // is injected here (per call) rather than fingerprinted.
    const JobRequest *effective = &req;
    JobRequest with_pool;
    if (executor && !req.options.executor) {
        with_pool = req;
        with_pool.options.executor = std::move(executor);
        effective = &with_pool;
    }
    const JobRequest &r = *effective;
    if (r.engine == "accum")
        return runAccumJob(g, r);
    if (r.algo == "pr")
        return runWith(g, PageRankProgram(), r);
    if (r.algo == "ppr")
        return runWith(g, PersonalizedPageRankProgram(r.source), r);
    if (r.algo == "sssp")
        return runWith(g, SsspProgram(r.source), r);
    if (r.algo == "bfs")
        return runWith(g, BfsProgram(r.source), r);
    if (r.algo == "cc")
        return runWith(g, CcProgram(), r);
    if (r.algo == "lp")
        return runWith(g, LabelPropagationProgram(), r);
    RunOutcome out;
    out.error = "unknown algorithm '" + r.algo + "'";
    return out;
}

bool
isRunnable(const JobRequest &req, std::string *why)
{
    static const char *const algos[] = {"pr",  "ppr", "sssp",
                                        "bfs", "cc",  "lp"};
    static const char *const engines[] = {"serial", "async", "fragment",
                                          "sim", "accum"};
    static const char *const accum_algos[] = {"pr", "sssp", "bfs", "cc"};
    bool algo_ok = false;
    for (const char *a : algos)
        algo_ok = algo_ok || req.algo == a;
    bool engine_ok = false;
    for (const char *e : engines)
        engine_ok = engine_ok || req.engine == e;
    bool combo_ok = true;
    if (algo_ok && engine_ok && req.engine == "accum") {
        combo_ok = false;
        for (const char *a : accum_algos)
            combo_ok = combo_ok || req.algo == a;
    }
    if (!algo_ok && why)
        *why = "unknown algorithm '" + req.algo + "'";
    else if (!engine_ok && why)
        *why = "unknown engine '" + req.engine + "'";
    else if (!combo_ok && why)
        *why = "algorithm '" + req.algo +
               "' has no accumulative (delta) form";
    return algo_ok && engine_ok && combo_ok;
}

std::uint64_t
jobFamilyFingerprint(std::uint64_t graph_fingerprint,
                     const JobRequest &req)
{
    Fingerprint fp;
    fp.mix(graph_fingerprint);
    fp.mix(std::string_view(req.algo));
    // The source vertex is part of the fixpoint only for sssp/bfs/ppr.
    // For source-less algorithms it is normalized to a sentinel:
    // mixing a stray source there is never a *wrong* hit, but it
    // splits one result family across cache entries, so equivalent
    // pagerank/cc/lp requests with different stray sources would miss
    // the ResultCache (and its warm-start path) for no reason.  The
    // sentinel cannot collide with a real source: VertexId is 32-bit.
    constexpr std::uint64_t kNoSource = ~std::uint64_t{0};
    fp.mix(algoUsesSource(req.algo)
               ? static_cast<std::uint64_t>(req.source)
               : kNoSource);
    return fp.value();
}

std::uint64_t
jobFingerprint(std::uint64_t graph_fingerprint, const JobRequest &req)
{
    Fingerprint fp;
    fp.mix(jobFamilyFingerprint(graph_fingerprint, req));
    fp.mix(std::string_view(req.engine));
    const EngineOptions &opt = req.options;
    fp.mix(static_cast<std::uint64_t>(opt.blockSize));
    fp.mix(static_cast<std::uint64_t>(opt.schedule));
    fp.mix(static_cast<std::uint64_t>(opt.mode));
    fp.mix(opt.tolerance);
    fp.mix(opt.maxEpochs);
    fp.mix(opt.seed);
    fp.mix(static_cast<std::uint64_t>(opt.numThreads));
    // The fragment cut changes the update schedule (hence the exact
    // floating-point trajectory), so it is part of the result identity.
    fp.mix(static_cast<std::uint64_t>(opt.fragments));
    return fp.value();
}

} // namespace graphabcd
