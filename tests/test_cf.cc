/**
 * @file
 * Tests of Collaborative Filtering: the wide-value vertex program, RMSE
 * descent on planted low-rank data, and the paper's Fig. 5 shape
 * (smaller blocks reach lower RMSE in fewer epochs).
 */

#include <gtest/gtest.h>

#include "algorithms/cf.hh"
#include "core/engine.hh"
#include "graph/generators.hh"

namespace graphabcd {
namespace {

constexpr std::uint32_t H = 8;

BlockPartition
trainingGraph(VertexId users, VertexId items, EdgeId ratings,
              VertexId block_size, std::uint64_t seed)
{
    Rng rng(seed);
    BipartiteGraph bg = generateRatings(users, items, ratings, rng,
                                        {.latent_dim = H});
    return BlockPartition(bg.graph.symmetrized(), block_size);
}

double
trainRmse(const BlockPartition &g, double epochs, VertexId,
          Schedule sched = Schedule::Cyclic)
{
    EngineOptions opt;
    opt.blockSize = g.blockSize();
    opt.schedule = sched;
    opt.tolerance = 1e-6;
    opt.maxEpochs = epochs;
    CfProgram<H> prog(0.2, 0.02);
    SerialEngine<CfProgram<H>> engine(g, prog, opt);
    std::vector<FeatureVec<H>> x;
    engine.run(x);
    return cfRmse<H>(g, x);
}

TEST(Cf, InitIsDeterministicAndScaled)
{
    Rng rng(61);
    BipartiteGraph bg = generateRatings(20, 10, 100, rng);
    BlockPartition g(bg.graph.symmetrized(), 8);
    CfProgram<H> prog;
    auto a = prog.init(3, g);
    auto b = prog.init(3, g);
    EXPECT_EQ(a, b);
    for (float f : a)
        EXPECT_LE(std::abs(f), 0.5f / std::sqrt(static_cast<float>(H)));
    // Different vertices get different features.
    EXPECT_NE(prog.init(3, g), prog.init(4, g));
}

TEST(Cf, GatherAccumulatesGradient)
{
    CfProgram<H> prog(0.1, 0.0);
    FeatureVec<H> xu{}, xi{};
    xu.fill(0.5f);
    xi.fill(0.25f);
    // err = rating - dot = 4 - 8*0.5*0.25 = 3.
    auto term = prog.edgeTerm(xu, xi, 4.0f);
    for (std::uint32_t k = 0; k < H; k++)
        EXPECT_NEAR(term[k], 3.0 * 0.25, 1e-6);
    auto sum = prog.combine(term, term);
    for (std::uint32_t k = 0; k < H; k++)
        EXPECT_NEAR(sum[k], 2.0 * 3.0 * 0.25, 1e-6);
}

TEST(Cf, RegularizationPullsTowardZero)
{
    CfProgram<H> prog(0.1, 1.0);
    FeatureVec<H> xu{}, xi{};
    xu.fill(1.0f);
    xi.fill(0.0f);   // err*xi = 0, only the -lambda*xu term remains
    auto term = prog.edgeTerm(xu, xi, 0.0f);
    for (std::uint32_t k = 0; k < H; k++)
        EXPECT_NEAR(term[k], -1.0, 1e-6);
}

TEST(Cf, TrainingReducesRmse)
{
    BlockPartition g = trainingGraph(100, 40, 3000, 16, 62);
    CfProgram<H> prog(0.2, 0.02);
    std::vector<FeatureVec<H>> init;
    init.reserve(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); v++)
        init.push_back(prog.init(v, g));
    double rmse0 = cfRmse<H>(g, init);

    double rmse20 = trainRmse(g, 20.0, 16);
    EXPECT_LT(rmse20, rmse0 * 0.7);
}

TEST(Cf, MoreEpochsMeanLowerRmse)
{
    BlockPartition g = trainingGraph(100, 40, 3000, 16, 63);
    double r5 = trainRmse(g, 5.0, 16);
    double r25 = trainRmse(g, 25.0, 16);
    EXPECT_LT(r25, r5);
}

TEST(Cf, SmallBlocksBeatJacobiAtEqualEpochs)
{
    // The Fig. 5 shape: at the same epoch budget, block Gauss-Seidel
    // (small blocks) reaches lower RMSE than full-batch BSP.
    Rng rng(64);
    BipartiteGraph bg = generateRatings(150, 60, 5000, rng,
                                        {.latent_dim = H});
    EdgeList sym = bg.graph.symmetrized();

    // A small budget keeps both runs in the transient regime where the
    // Gauss-Seidel advantage is visible (both plateau if run long).
    BlockPartition g_small(sym, 16);
    double small = trainRmse(g_small, 4.0, 16);

    BlockPartition g_bsp(sym, sym.numVertices());
    EngineOptions opt;
    opt.blockSize = sym.numVertices();
    opt.mode = ExecMode::Bsp;
    opt.tolerance = 1e-6;
    opt.maxEpochs = 4.0;
    CfProgram<H> prog(0.2, 0.02);
    SerialEngine<CfProgram<H>> engine(g_bsp, prog, opt);
    std::vector<FeatureVec<H>> x;
    engine.run(x);
    double bsp = cfRmse<H>(g_bsp, x);

    EXPECT_LT(small, bsp);
}

TEST(Cf, RmseOfPerfectFactorsIsNoiseOnly)
{
    // With zero noise and generous capacity the planted structure is
    // recoverable to a low RMSE (sanity check of the generator +
    // objective pairing).
    Rng rng(65);
    BipartiteGraph bg = generateRatings(
        80, 30, 4000, rng, {.latent_dim = H, .noise = 0.0});
    BlockPartition g(bg.graph.symmetrized(), 8);
    EngineOptions opt;
    opt.blockSize = 8;
    opt.tolerance = 1e-7;
    opt.maxEpochs = 200.0;
    CfProgram<H> prog(0.3, 0.001);
    SerialEngine<CfProgram<H>> engine(g, prog, opt);
    std::vector<FeatureVec<H>> x;
    engine.run(x);
    EXPECT_LT(cfRmse<H>(g, x), 0.35);
}

} // namespace
} // namespace graphabcd
