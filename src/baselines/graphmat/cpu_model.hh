/**
 * @file
 * CPU timing model for the software baselines.
 *
 * The paper runs GraphMat on the HARPv2 host (14-core Broadwell Xeon,
 * ~58 GB/s DRAM bandwidth) and reports both frameworks to be memory-
 * bandwidth bound (Sec. V-C/V-D).  Reproducing wall-clock numbers on
 * arbitrary hardware is not meaningful, so the benches convert the
 * *functional* work counters (exact iteration/edge/update counts from
 * the real runs) into time through this bandwidth model, exactly like
 * the paper converts Graphicionado's published numbers through a
 * bandwidth projection.  Constants are calibrated so GraphMat lands in
 * the paper's measured 400-1100 MTES band.
 */

#ifndef GRAPHABCD_BASELINES_GRAPHMAT_CPU_MODEL_HH
#define GRAPHABCD_BASELINES_GRAPHMAT_CPU_MODEL_HH

#include <cstdint>

#include "baselines/graphmat/engine.hh"
#include "core/engine.hh"
#include "graph/types.hh"

namespace graphabcd {

/** Host-CPU parameters (defaults = the HARPv2 Xeon host). */
struct CpuModelConfig
{
    double bandwidthBytesPerSec = 58e9;  //!< socket DRAM bandwidth
    std::uint32_t threads = 14;
    double efficiency = 0.6;        //!< achieved fraction of peak BW
    double randomPenalty = 2.0;     //!< random-access amplification
    double barrierSeconds = 2e-5;   //!< per-superstep global barrier

    /**
     * Amplification of per-edge traffic for *filtered* (sparse-frontier)
     * runs such as SSSP: SpMSpV touches scattered columns with poor
     * locality, so each traversed edge costs several cache lines.  This
     * is what keeps GraphMat's SSSP in the paper's 440-860 MTES band
     * while its dense SpMV (PR) runs at ~1000 MTES.
     */
    double sparseEdgePenalty = 2.5;

    /**
     * Per-thread edge rate of the *fused software GraphABCD* kernel:
     * the CPU gather is a scalar dependent-reduction chain over
     * irregular segments and cannot stream at DRAM bandwidth; the
     * paper's Fig. 6 software baseline sustains a few hundred MTES on
     * all 14 threads, which this constant reproduces.
     */
    double kernelEdgesPerSecPerThread = 25e6;

    /** Bytes per SpMV edge: index + weight + message write & read. */
    double
    edgeBytes(std::uint32_t value_bytes) const
    {
        return 8.0 + 4.0 + 2.0 * value_bytes;
    }

    /** Per-vertex bytes touched every superstep (state + active bits). */
    double
    vertexBytes(std::uint32_t value_bytes) const
    {
        return 2.0 * value_bytes + 2.0;
    }

    /** Effective bandwidth after the efficiency derate. */
    double
    effectiveBandwidth() const
    {
        return bandwidthBytesPerSec * efficiency;
    }
};

/** Modelled time + throughput of one run. */
struct CpuTimeReport
{
    double seconds = 0.0;
    double mtes = 0.0;    //!< million traversed edges per second
};

/**
 * Time a GraphMat run: per superstep, the SpMV streams the active
 * columns and touches the whole vertex arrays; the random scatter of
 * partial sums pays the random penalty on the vertex side.
 */
CpuTimeReport graphmatTime(const graphmat::GraphMatReport &report,
                           VertexId num_vertices,
                           std::uint32_t value_bytes,
                           const CpuModelConfig &cfg = {});

/**
 * Time the *software* GraphABCD run (paper Fig. 6 baseline: fused
 * GATHER-APPLY-SCATTER on CPU threads): sequential edge-slice streams
 * plus random out-edge writes.
 */
CpuTimeReport softwareAbcdTime(const EngineReport &report,
                               VertexId num_vertices,
                               std::uint32_t value_bytes,
                               const CpuModelConfig &cfg = {});

} // namespace graphabcd

#endif // GRAPHABCD_BASELINES_GRAPHMAT_CPU_MODEL_HH
