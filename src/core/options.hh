/**
 * @file
 * BCD engine configuration — the paper's three algorithm design options
 * (Sec. III-B) plus execution-model and termination knobs.
 */

#ifndef GRAPHABCD_CORE_OPTIONS_HH
#define GRAPHABCD_CORE_OPTIONS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/stop_token.hh"
#include "graph/types.hh"
#include "obs/obs.hh"

namespace graphabcd {

class Executor;

/**
 * Block selection method (scheduling strategy, paper Sec. III-B).
 */
enum class Schedule
{
    Cyclic,     //!< fixed order, predictable, prefetch friendly
    Priority,   //!< Gauss-Southwell: largest estimated gradient first
    Random,     //!< uniform over active blocks (used in ablations)
    Obim,       //!< Gauss-Southwell via log-bucketed concurrent worklist
};

/** @return human-readable name of a Schedule. */
const char *to_string(Schedule schedule);

/**
 * Execution model, used by the threaded engine and the HARP simulator to
 * build the paper's Fig. 7 breakdown.
 */
enum class ExecMode
{
    Async,     //!< barrierless, lock-free (GraphABCD proper)
    Barrier,   //!< memory barrier after every block's GAS processing
    Bsp,       //!< global barrier per iteration, Jacobi-style commits
};

/** @return human-readable name of an ExecMode. */
const char *to_string(ExecMode mode);

/**
 * Knobs of a BCD run.  Defaults follow the paper's prototype: block size
 * of a few hundred to a few thousand vertices, cyclic selection unless
 * priority is switched on.
 */
struct EngineOptions
{
    /** Vertices per block; >= |V| degenerates to full gradient descent
     *  (BSP / Jacobi). */
    VertexId blockSize = 512;

    /** Block selection rule. */
    Schedule schedule = Schedule::Cyclic;

    /** Execution model (threaded engine / simulator only; the serial
     *  engine is inherently Gauss-Seidel over blocks). */
    ExecMode mode = ExecMode::Async;

    /**
     * Per-vertex activation threshold: a vertex whose value moved by
     * less than this does not (re)activate its downstream blocks.  This
     * is the quiescence-based convergence criterion.
     */
    double tolerance = 1e-7;

    /** Hard safety limit in epochs (1 epoch == |V| vertex updates). */
    double maxEpochs = 10000.0;

    /** Seed for the Random scheduler. */
    std::uint64_t seed = 1;

    /**
     * Participation bound of the threaded asynchronous engine: at most
     * this many pool workers (plus the calling thread) execute one run
     * concurrently.  The engine never spawns threads of its own; it
     * borrows them from `executor`.
     */
    std::uint32_t numThreads = 4;

    /**
     * Shard count of the fragment engine (src/fragment): the graph is
     * cut into this many contiguous, edge-balanced vertex-range
     * fragments exchanging deltas over SPSC rings.  Clamped to the
     * block count; 1 degenerates to a single self-contained shard.
     * Ignored by the serial/async engines and the HARP sim (the sim
     * derives its shard count from the accelerator list instead).
     */
    std::uint32_t fragments = 1;

    /**
     * Record a convergence-trace sample roughly every `traceInterval`
     * epochs (0 disables tracing).  Used by the Fig. 4/5 harnesses.
     */
    double traceInterval = 0.0;

    // ------------------------------------------------- serve-layer hooks
    // These do not change what fixpoint a run converges to, only how a
    // run is observed or ended early; the ResultCache fingerprint
    // (serve/runner) therefore excludes them.

    /**
     * Cooperative cancellation: every engine polls this at block-update
     * granularity and ends the run (EngineReport::stopped) when it
     * fires.  Default-constructed = never fires.
     */
    StopToken stop;

    /**
     * Optional live work counters the engine publishes into while
     * running, for lock-free status snapshots from other threads.
     */
    std::shared_ptr<Progress> progress;

    /**
     * Optional warm-start values (one per vertex): engines whose Value
     * is double seed the run from these instead of Program::init(),
     * letting a re-submitted job resume from a cached fixpoint (the
     * Maiter-style accumulative-iteration motivation).  Ignored when
     * null or when the size does not match |V|.
     */
    std::shared_ptr<const std::vector<double>> warmStart;

    /**
     * Optional convergence curve sink: engines append one sample per
     * trace interval (residual over the window, active vertices, work
     * counters, wall/simulated time) plus a final sample at run end.
     * When set and traceInterval is 0, engines sample once per epoch.
     * Null (the default) records nothing; under GRAPHABCD_OBS=OFF the
     * facade type is a no-op stub and this is always null.
     */
    std::shared_ptr<obs::ConvergenceSeries> convergence;

    /**
     * Worker pool the threaded asynchronous engine draws from.  Null
     * selects the process-wide pool (Executor::shared()), so by
     * default every run in the process shares one fixed set of
     * workers; the serve layer injects its own pool here.  Like the
     * hooks above, the pool does not change what fixpoint a run
     * converges to, so the ResultCache fingerprint excludes it.
     */
    std::shared_ptr<Executor> executor;
};

} // namespace graphabcd

#endif // GRAPHABCD_CORE_OPTIONS_HH
