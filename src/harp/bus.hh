/**
 * @file
 * Serialised bandwidth resource — models the CPU-FPGA link (and, with a
 * different rate, a CPU thread's DRAM share).  FIFO arbitration: each
 * transfer occupies the link for bytes/bandwidth seconds starting no
 * earlier than the link is free, which is how the paper's shared
 * PCIe/QPI fabric behaves under the customized DMA unit.
 */

#ifndef GRAPHABCD_HARP_BUS_HH
#define GRAPHABCD_HARP_BUS_HH

#include <cstdint>

#include "support/logging.hh"

namespace graphabcd {

/** Result of one granted transfer. */
struct BusGrant
{
    double start = 0.0;   //!< when the transfer begins
    double end = 0.0;     //!< when the last byte arrives
};

/** FIFO-arbitrated bandwidth resource with busy-time accounting. */
class Bus
{
  public:
    /** @param bytes_per_second link bandwidth; must be > 0. */
    explicit Bus(double bytes_per_second)
        : bandwidth(bytes_per_second)
    {
        GRAPHABCD_ASSERT(bandwidth > 0.0, "bus needs positive bandwidth");
    }

    /**
     * Request a transfer of `bytes` at time `now`.
     * @return grant window; the link is busy for the whole window.
     */
    BusGrant
    transfer(double now, std::uint64_t bytes)
    {
        BusGrant grant;
        grant.start = now > freeAt ? now : freeAt;
        grant.end = grant.start + static_cast<double>(bytes) / bandwidth;
        freeAt = grant.end;
        busy += grant.end - grant.start;
        total_bytes += bytes;
        return grant;
    }

    /** @return when the link next becomes idle. */
    double freeTime() const { return freeAt; }

    /** @return cumulative busy seconds. */
    double busySeconds() const { return busy; }

    /** @return cumulative transferred bytes. */
    std::uint64_t transferredBytes() const { return total_bytes; }

    /** @return busy fraction of the window [0, horizon]. */
    double
    utilization(double horizon) const
    {
        return horizon > 0.0 ? busy / horizon : 0.0;
    }

    /** @return configured bandwidth in bytes/second. */
    double bytesPerSecond() const { return bandwidth; }

  private:
    double bandwidth;
    double freeAt = 0.0;
    double busy = 0.0;
    std::uint64_t total_bytes = 0;
};

} // namespace graphabcd

#endif // GRAPHABCD_HARP_BUS_HH
