/**
 * @file
 * Synthetic graph generators.
 *
 * These stand in for the paper's real-world inputs (Table I): RMAT
 * reproduces the power-law degree skew of the social graphs, the bipartite
 * rating generator reproduces the user-item structure of the
 * recommendation datasets, and the regular families (chain, grid, star,
 * complete) exercise edge cases in tests.
 */

#ifndef GRAPHABCD_GRAPH_GENERATORS_HH
#define GRAPHABCD_GRAPH_GENERATORS_HH

#include <cstdint>

#include "graph/edge_list.hh"
#include "support/random.hh"

namespace graphabcd {

/** Parameters of the recursive-matrix (RMAT) generator. */
struct RmatOptions
{
    double a = 0.57;   //!< top-left quadrant probability (Graph500 values)
    double b = 0.19;   //!< top-right
    double c = 0.19;   //!< bottom-left; d = 1 - a - b - c
    bool scramble = true;   //!< permute ids to break locality artifacts
    bool self_loops = false;
    bool weighted = false;  //!< uniform weights in [min,max] when true
    float min_weight = 1.0f;
    float max_weight = 16.0f;
};

/**
 * RMAT power-law graph (Chakrabarti et al.).
 * @param num_vertices rounded up to a power of two internally; emitted ids
 *        are folded back into [0, num_vertices).
 * @param num_edges number of directed edges generated (duplicates kept —
 *        real social graphs have parallel interactions too).
 */
EdgeList generateRmat(VertexId num_vertices, EdgeId num_edges, Rng &rng,
                      const RmatOptions &opts = {});

/** Erdős–Rényi G(n, m): m uniform random directed edges. */
EdgeList generateErdosRenyi(VertexId num_vertices, EdgeId num_edges,
                            Rng &rng, bool weighted = false);

/** Directed chain 0 -> 1 -> ... -> n-1 (worst case for propagation). */
EdgeList generateChain(VertexId num_vertices, bool weighted = false);

/** Directed cycle: chain plus the closing edge n-1 -> 0. */
EdgeList generateCycle(VertexId num_vertices);

/** Star: hub 0 -> every other vertex (extreme out-degree skew). */
EdgeList generateStar(VertexId num_vertices);

/**
 * 4-neighbor 2-D grid with edges in both directions, the classic road
 * network stand-in for SSSP.  Vertices are row-major.
 * @param weighted uniform random weights in [1, 16] when true.
 */
EdgeList generateGrid2d(VertexId rows, VertexId cols, Rng &rng,
                        bool weighted = true);

/** Complete directed graph without self loops (dense stress test). */
EdgeList generateComplete(VertexId num_vertices);

/** A bipartite rating graph plus its shape metadata. */
struct BipartiteGraph
{
    EdgeList graph;        //!< users [0,users), items [users,users+items)
    VertexId users = 0;
    VertexId items = 0;

    /** @return the vertex id of user `u`. */
    VertexId userVertex(VertexId u) const { return u; }
    /** @return the vertex id of item `i`. */
    VertexId itemVertex(VertexId i) const { return users + i; }
};

/** Parameters of the synthetic rating generator. */
struct RatingOptions
{
    double item_skew = 0.8;     //!< Zipf exponent of item popularity
    double min_rating = 1.0;
    double max_rating = 5.0;
    std::uint32_t latent_dim = 8;   //!< planted factor dimensionality
    double noise = 0.3;             //!< gaussian noise added to ratings
};

/**
 * Synthetic user-item ratings with a *planted* low-rank structure: ratings
 * are inner products of hidden user/item factors plus noise, so CF can
 * actually recover signal and its RMSE curve is meaningful (paper Fig. 5).
 * Edges run user -> item; symmetrize for the CF training loop.
 */
BipartiteGraph generateRatings(VertexId users, VertexId items,
                               EdgeId num_ratings, Rng &rng,
                               const RatingOptions &opts = {});

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_GENERATORS_HH
