/**
 * @file
 * Whole-system tests of the HARP simulator: functional correctness of
 * the simulated execution (against the exact references), execution-
 * mode timing relations (Async < Barrier < BSP), hybrid execution,
 * utilization and traffic invariants.
 */

#include <gtest/gtest.h>

#include "algorithms/cf.hh"
#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "algorithms/sssp.hh"
#include "graph/generators.hh"
#include "harp/system.hh"

namespace graphabcd {
namespace {

EngineOptions
baseOptions(VertexId block_size)
{
    EngineOptions opt;
    opt.blockSize = block_size;
    opt.tolerance = 1e-12;
    return opt;
}

TEST(HarpSystem, PageRankMatchesReference)
{
    Rng rng(91);
    EdgeList el = generateRmat(400, 3200, rng);
    BlockPartition g(el, 32);
    HarpSystem<PageRankProgram> sys(g, PageRankProgram(0.85),
                                    baseOptions(32), HarpConfig{});
    std::vector<double> x;
    SimReport report = sys.run(x);
    EXPECT_TRUE(report.converged);
    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-6);
}

TEST(HarpSystem, SsspMatchesDijkstraInAllModes)
{
    Rng rng(92);
    EdgeList el = generateRmat(300, 2400, rng, {.weighted = true});
    BlockPartition g(el, 16);
    std::vector<double> ref = dijkstraReference(el, 0);
    for (ExecMode mode :
         {ExecMode::Async, ExecMode::Barrier, ExecMode::Bsp}) {
        EngineOptions opt = baseOptions(16);
        opt.mode = mode;
        opt.tolerance = 1e-9;
        HarpSystem<SsspProgram> sys(g, SsspProgram(0), opt, HarpConfig{});
        std::vector<double> dist;
        SimReport report = sys.run(dist);
        EXPECT_TRUE(report.converged) << to_string(mode);
        for (VertexId v = 0; v < el.numVertices(); v++)
            EXPECT_NEAR(dist[v], ref[v], 1e-6)
                << to_string(mode) << " vertex " << v;
    }
}

TEST(HarpSystem, CfWideValuesRun)
{
    Rng rng(93);
    BipartiteGraph bg = generateRatings(80, 30, 2000, rng,
                                        {.latent_dim = 8});
    EdgeList sym = bg.graph.symmetrized();
    BlockPartition g(sym, 16);
    EngineOptions opt = baseOptions(16);
    opt.tolerance = 1e-5;
    opt.maxEpochs = 20.0;
    HarpSystem<CfProgram<8>> sys(g, CfProgram<8>(0.2, 0.02), opt,
                                 HarpConfig{});
    std::vector<FeatureVec<8>> x;
    SimReport report = sys.run(x);
    EXPECT_GT(report.blockUpdates, 0u);

    CfProgram<8> prog(0.2, 0.02);
    std::vector<FeatureVec<8>> init;
    for (VertexId v = 0; v < g.numVertices(); v++)
        init.push_back(prog.init(v, g));
    EXPECT_LT(cfRmse<8>(g, x), cfRmse<8>(g, init));
}

TEST(HarpSystem, AsyncIsFastestExecutionMode)
{
    // The Fig. 7 claim: async beats both baselines.  (Barrier 1.9-4.2x
    // and BSP 1.4-15.2x slower in the paper — overlapping ranges, so no
    // strict Barrier/BSP ordering is asserted.)  BSP must also pay a
    // convergence-rate penalty (more epochs), which the paper names as
    // the main source of its slowdown.
    Rng rng(94);
    EdgeList el = generateRmat(8192, 65536, rng);
    BlockPartition g(el, 32);   // 256 blocks >> in-flight window
    double seconds[3];
    double epochs[3];
    int idx = 0;
    for (ExecMode mode :
         {ExecMode::Async, ExecMode::Barrier, ExecMode::Bsp}) {
        EngineOptions opt = baseOptions(32);
        opt.mode = mode;
        opt.tolerance = 1e-9;
        HarpSystem<PageRankProgram> sys(g, PageRankProgram(), opt,
                                        HarpConfig{});
        std::vector<double> x;
        SimReport report = sys.run(x);
        seconds[idx] = report.seconds;
        epochs[idx] = report.epochs;
        idx++;
    }
    EXPECT_LT(seconds[0], seconds[1]);   // async < barrier
    EXPECT_LT(seconds[0], seconds[2]);   // async < bsp
    EXPECT_GT(epochs[2], epochs[0]);     // Jacobi converges slower
}

TEST(HarpSystem, BarrierMatchesAsyncConvergenceRate)
{
    // Paper Sec. V-D: 'Barrier' achieves a similar convergence rate to
    // 'Async' — the slowdown is coordination, not extra iterations.
    Rng rng(95);
    EdgeList el = generateRmat(8192, 65536, rng);
    BlockPartition g(el, 32);
    double epochs[2];
    int idx = 0;
    for (ExecMode mode : {ExecMode::Async, ExecMode::Barrier}) {
        EngineOptions opt = baseOptions(32);
        opt.mode = mode;
        opt.tolerance = 1e-9;
        HarpSystem<PageRankProgram> sys(g, PageRankProgram(), opt,
                                        HarpConfig{});
        std::vector<double> x;
        epochs[idx++] = sys.run(x).epochs;
    }
    EXPECT_NEAR(epochs[0], epochs[1], 0.35 * epochs[1]);
}

TEST(HarpSystem, AsyncImprovesPeUtilization)
{
    Rng rng(96);
    EdgeList el = generateRmat(4096, 32768, rng);
    BlockPartition g(el, 32);   // enough blocks to keep the window fed
    double util[2];
    int idx = 0;
    for (ExecMode mode : {ExecMode::Async, ExecMode::Bsp}) {
        EngineOptions opt = baseOptions(32);
        opt.mode = mode;
        opt.tolerance = 1e-9;
        HarpConfig cfg;
        cfg.numPes = 4;   // below the bandwidth knee
        HarpSystem<PageRankProgram> sys(g, PageRankProgram(), opt, cfg);
        std::vector<double> x;
        util[idx++] = sys.run(x).peUtilization;
    }
    EXPECT_GT(util[0], util[1]);
}

TEST(HarpSystem, MorePesReduceTimeUntilBandwidthBound)
{
    Rng rng(97);
    EdgeList el = generateRmat(4096, 32768, rng);
    BlockPartition g(el, 128);
    auto time_with = [&](std::uint32_t pes) {
        EngineOptions opt = baseOptions(128);
        opt.tolerance = 1e-9;
        HarpConfig cfg;
        cfg.numPes = pes;
        HarpSystem<PageRankProgram> sys(g, PageRankProgram(), opt, cfg);
        std::vector<double> x;
        return sys.run(x).seconds;
    };
    double t1 = time_with(1);
    double t4 = time_with(4);
    double t16 = time_with(16);
    EXPECT_GT(t1, t4 * 1.5);       // near-linear early scaling
    EXPECT_LE(t16, t4 * 1.02);     // still no slower at 16
    // Saturation: the 4->16 gain is far below the 4x PE increase.
    EXPECT_GT(t16, t4 / 3.0);
}

TEST(HarpSystem, BusSaturatesWithManyPes)
{
    Rng rng(98);
    // Enough blocks to keep the dispatch window full AND enough edges
    // per block to amortise per-task latencies (the LogCA granularity
    // argument of Sec. IV-A1) — tiny blocks underutilise the link.
    EdgeList el = generateRmat(16384, 262144, rng);
    BlockPartition g(el, 256);   // ~4k edges/block, 64 blocks
    auto bus_util = [&](std::uint32_t pes) {
        EngineOptions opt = baseOptions(256);
        opt.tolerance = 1e-9;
        HarpConfig cfg;
        cfg.numPes = pes;
        HarpSystem<PageRankProgram> sys(g, PageRankProgram(), opt, cfg);
        std::vector<double> x;
        return sys.run(x).busUtilization;
    };
    double u2 = bus_util(2);
    double u16 = bus_util(16);
    EXPECT_GT(u16, u2);
    EXPECT_GT(u16, 0.85);   // paper Fig. 9: ~98% when saturated
}

TEST(HarpSystem, TrafficIsReadDominated)
{
    // Pull-push: |E|-proportional reads vs |V|-proportional writes.
    Rng rng(99);
    EdgeList el = generateRmat(1024, 16384, rng);   // avg degree 16
    BlockPartition g(el, 64);
    EngineOptions opt = baseOptions(64);
    opt.tolerance = 1e-9;
    HarpSystem<PageRankProgram> sys(g, PageRankProgram(), opt,
                                    HarpConfig{});
    std::vector<double> x;
    SimReport report = sys.run(x);
    EXPECT_GT(report.busReadBytes, 4 * report.busWriteBytes);
}

TEST(HarpSystem, HybridExecutionUsesCpuAndHelps)
{
    Rng rng(100);
    EdgeList el = generateRmat(4096, 32768, rng);
    BlockPartition g(el, 64);
    auto run_with = [&](bool hybrid, std::uint32_t pes) {
        EngineOptions opt = baseOptions(64);
        opt.tolerance = 1e-9;
        HarpConfig cfg;
        cfg.numPes = pes;
        cfg.hybrid = hybrid;
        HarpSystem<PageRankProgram> sys(g, PageRankProgram(), opt, cfg);
        std::vector<double> x;
        return sys.run(x);
    };
    // With few PEs the backlog spills onto CPU workers.
    SimReport plain = run_with(false, 2);
    SimReport hybrid = run_with(true, 2);
    EXPECT_GT(hybrid.cpuGatherTasks, 0u);
    EXPECT_LT(hybrid.seconds, plain.seconds);
    // Functional result stays correct.
    std::vector<double> ref = pagerankReference(el, 0.85);
    std::vector<double> x;
    EngineOptions opt = baseOptions(64);
    opt.tolerance = 1e-12;
    HarpConfig cfg;
    cfg.numPes = 2;
    cfg.hybrid = true;
    HarpSystem<PageRankProgram> sys(g, PageRankProgram(0.85), opt, cfg);
    sys.run(x);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-6);
}

TEST(HarpSystem, StopFnEndsRunEarly)
{
    Rng rng(101);
    EdgeList el = generateRmat(512, 4096, rng);
    BlockPartition g(el, 32);
    EngineOptions opt = baseOptions(32);
    opt.tolerance = 1e-12;
    opt.traceInterval = 1.0;
    HarpSystem<PageRankProgram> sys(g, PageRankProgram(), opt,
                                    HarpConfig{});
    std::vector<double> x;
    SimReport report = sys.run(
        x, [](double epochs, const std::vector<double> &) {
            return epochs >= 3.0;
        });
    EXPECT_TRUE(report.converged);
    // Some in-flight overshoot past the stop check is expected.
    EXPECT_LT(report.epochs, 8.0);
}

TEST(HarpSystem, ReportInvariantsHold)
{
    Rng rng(102);
    EdgeList el = generateRmat(512, 4096, rng);
    BlockPartition g(el, 32);
    EngineOptions opt = baseOptions(32);
    opt.tolerance = 1e-9;
    HarpSystem<PageRankProgram> sys(g, PageRankProgram(), opt,
                                    HarpConfig{});
    std::vector<double> x;
    SimReport report = sys.run(x);
    EXPECT_GT(report.seconds, 0.0);
    EXPECT_GT(report.mtes, 0.0);
    EXPECT_GE(report.peUtilization, 0.0);
    EXPECT_LE(report.peUtilization, 1.0);
    EXPECT_LE(report.busUtilization, 1.0 + 1e-9);
    EXPECT_EQ(report.fpgaTasks + report.cpuGatherTasks,
              report.blockUpdates);
    EXPECT_NEAR(report.epochs,
                static_cast<double>(report.vertexUpdates) /
                    el.numVertices(),
                1e-9);
}

} // namespace
} // namespace graphabcd
