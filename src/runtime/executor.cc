#include "runtime/executor.hh"

#include "obs/log.hh"
#include "obs/obs.hh"

namespace graphabcd {

namespace {

/** Resolved once per process (registration takes a mutex); the gauge
 *  tracks the instantaneous cross-shard queue depth. */
[[maybe_unused]] obs::Gauge &
queuedGauge()
{
    static obs::Gauge &gauge = obs::gauge("executor.queued");
    return gauge;
}

} // namespace

// ------------------------------------------------------------- Executor

Executor::Executor(std::uint32_t num_workers)
{
    std::uint32_t n = num_workers;
    if (n == 0) {
        n = std::max(1u, std::thread::hardware_concurrency());
    }
    shards.reserve(n);
    for (std::uint32_t i = 0; i < n; i++)
        shards.push_back(std::make_unique<Shard>());
    workers.reserve(n);
    for (std::uint32_t i = 0; i < n; i++)
        workers.emplace_back([this, i] { workerLoop(i); });
    GRAPHABCD_LOG_INFO("runtime", "executor started",
                       LOGF("workers", n));
}

Executor::~Executor()
{
    {
        std::lock_guard<std::mutex> lock(sleepMtx);
        stopping = true;
    }
    sleepCv.notify_all();
    for (std::thread &t : workers)
        t.join();
}

const std::shared_ptr<Executor> &
Executor::shared()
{
    // One pool per process, sized to the hardware.  Function-local so
    // the first engine run constructs it; destroyed (drained + joined)
    // at static teardown, after any engine holding a reference.
    static const std::shared_ptr<Executor> instance =
        std::make_shared<Executor>();
    return instance;
}

std::shared_ptr<Executor::Job>
Executor::createJob(std::uint32_t max_participation)
{
    // make_shared needs a public ctor; Job's is private to keep the
    // invariant that every Job belongs to an Executor.
    return std::shared_ptr<Job>(new Job(*this, max_participation));
}

Executor::Stats
Executor::stats() const
{
    Stats s;
    s.executed = nExecuted.load(std::memory_order_relaxed);
    s.steals = nSteals.load(std::memory_order_relaxed);
    return s;
}

void
Executor::enqueue(Task task)
{
    {
        const std::size_t shard =
            rr.fetch_add(1, std::memory_order_relaxed) % shards.size();
        std::lock_guard<std::mutex> lock(shards[shard]->mtx);
        shards[shard]->queue.push_back(std::move(task));
    }
    queued.fetch_add(1, std::memory_order_release);
    if constexpr (obs::kEnabled)
        queuedGauge().set(static_cast<double>(
            queued.load(std::memory_order_relaxed)));
    // The empty critical section orders the queued increment against a
    // worker's predicate check, so the notify cannot be lost.
    { std::lock_guard<std::mutex> lock(sleepMtx); }
    sleepCv.notify_one();
}

bool
Executor::tryTake(std::uint32_t self, Task &out, bool &stolen)
{
    // Own shard first (FIFO), then sweep the others as a thief,
    // starting just past our own so thieves fan out instead of all
    // hammering shard 0.
    {
        Shard &own = *shards[self];
        std::lock_guard<std::mutex> lock(own.mtx);
        if (!own.queue.empty()) {
            out = std::move(own.queue.front());
            own.queue.pop_front();
            stolen = false;
            return true;
        }
    }
    const std::size_t n = shards.size();
    for (std::size_t i = 1; i < n; i++) {
        Shard &victim = *shards[(self + i) % n];
        std::lock_guard<std::mutex> lock(victim.mtx);
        if (!victim.queue.empty()) {
            out = std::move(victim.queue.back());
            victim.queue.pop_back();
            stolen = true;
            return true;
        }
    }
    return false;
}

void
Executor::workerLoop(std::uint32_t self)
{
    for (;;) {
        Task task;
        bool stolen = false;
        if (tryTake(self, task, stolen)) {
            queued.fetch_sub(1, std::memory_order_acq_rel);
            if constexpr (obs::kEnabled)
                queuedGauge().set(static_cast<double>(
                    queued.load(std::memory_order_relaxed)));
            if (stolen)
                nSteals.fetch_add(1, std::memory_order_relaxed);
            {
                // Adopt the submitter's span context for the task's
                // duration, and wrap the task itself in a span so the
                // per-task slice shows up under the submitting job's
                // tree.  Both are no-ops while tracing is off.
                obs::SpanScope adopt(task.ctx);
                obs::CausalSpan span("executor.task");
                task.fn();
            }
            nExecuted.fetch_add(1, std::memory_order_relaxed);
            finishTask(task.job);
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMtx);
        if (stopping && queued.load(std::memory_order_acquire) == 0)
            return;   // drained: nothing left to run, ever
        sleepCv.wait(lock, [this] {
            return stopping || queued.load(std::memory_order_acquire) > 0;
        });
        if (stopping && queued.load(std::memory_order_acquire) == 0)
            return;
    }
}

void
Executor::finishTask(const std::shared_ptr<Job> &job)
{
    Job::Pending next;
    bool have_next = false;
    bool idle = false;
    {
        std::lock_guard<std::mutex> lock(job->mtx);
        job->released--;
        job->unfinished--;
        if (!job->backlog.empty() && job->released < job->limit) {
            next = std::move(job->backlog.front());
            job->backlog.pop_front();
            job->released++;
            have_next = true;
        }
        idle = job->unfinished == 0;
    }
    if (have_next)
        enqueue(Task{std::move(next.fn), job, next.ctx});
    if (idle)
        job->idleCv.notify_all();
}

// ------------------------------------------------------------ Executor::Job

void
Executor::Job::submit(std::function<void()> fn)
{
    // Capture the submitter's ambient span context here, not at
    // release time: a backlogged task still belongs to the tree of
    // whoever submitted it, no matter which worker later frees a slot.
    const obs::SpanContext ctx = obs::currentSpan();
    bool release = false;
    {
        std::lock_guard<std::mutex> lock(mtx);
        unfinished++;
        if (released < limit) {
            released++;
            release = true;
        } else {
            backlog.push_back(Pending{std::move(fn), ctx});
        }
    }
    if (release)
        exec.enqueue(Task{std::move(fn), shared_from_this(), ctx});
}

void
Executor::Job::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    idleCv.wait(lock, [this] { return unfinished == 0; });
}

std::size_t
Executor::Job::pending() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return unfinished;
}

} // namespace graphabcd
