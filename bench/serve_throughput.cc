/**
 * @file
 * Closed-loop throughput benchmark for the serve layer.
 *
 * N client threads each submit-and-wait jobs against two registered
 * graphs, drawing algorithm and parameters from a small pool so the
 * ResultCache sees a realistic mix of repeats (hits) and fresh work
 * (misses).  QueueFull rejections back off and retry — that is the
 * admission control doing its job, and the rejection count is part of
 * the result.
 *
 * Configs cover the serial engine (service overhead + one core per
 * job) and the threaded async engine, where concurrent jobs share the
 * process-wide Executor instead of spawning per-job thread armies —
 * the peak OS thread count of the process is sampled per config to
 * show the bound.
 *
 * Prints per-config: jobs/sec, cache hit rate, rejection count, peak
 * threads; also writes every row to BENCH_serve.json so later changes
 * can track the perf trajectory.
 *
 * The run ends with a multi-tenant QoS stress: four tenants with 4:2:1:1
 * fair-share weights, where the weight-1 "free" tenant offers ~4x the
 * load of the equal-weight "bronze" tenant (4 client threads vs 1) and
 * a slice of its submissions carries a deadline far tighter than the
 * queue wait.  The FairShareQueue must hold each backlogged tenant's
 * completed-work share near weight/sum(weights) regardless of offered
 * load (the fairness numbers land in BENCH_serve.json), displace the
 * over-share flood's newest work first under queue pressure (terminal
 * "shed" status, fail-fast), and shed the deadline-doomed submissions
 * at admission.
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "graph/datasets.hh"
#include "obs/obs.hh"
#include "serve/graph_registry.hh"
#include "serve/job_manager.hh"
#include "support/flags.hh"
#include "support/timer.hh"

using namespace graphabcd;

namespace {

struct WorkloadItem
{
    const char *graph;
    const char *algo;
    VertexId source;
};

/** Mixed PR/SSSP pool: 8 distinct jobs over 2 graphs. */
const WorkloadItem kPool[] = {
    {"web", "pr", 0},    {"web", "sssp", 0},  {"web", "sssp", 7},
    {"road", "pr", 0},   {"road", "sssp", 0}, {"road", "sssp", 3},
    {"web", "bfs", 0},   {"road", "cc", 0},
};

struct ClientResult
{
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
};

/** One row of the benchmark, printed and serialised to JSON. */
struct ConfigResult
{
    std::uint32_t clients = 0;
    std::uint32_t workers = 0;
    std::string engine;
    bool cached = false;
    std::uint64_t jobs = 0;
    double jobsPerSec = 0.0;
    double hitRate = 0.0;
    std::uint64_t warmStarts = 0;
    std::uint64_t rejected = 0;
    long peakThreads = 0;
};

/** @return the current OS thread count of this process (-1 off-linux). */
long
processThreadCount()
{
    std::ifstream ifs("/proc/self/status");
    std::string key;
    while (ifs >> key) {
        if (key == "Threads:") {
            long n = -1;
            ifs >> n;
            return n;
        }
        ifs.ignore(4096, '\n');
    }
    return -1;
}

ClientResult
runClient(JobManager &manager, std::uint32_t seed, std::uint64_t jobs,
          bool cached, const std::string &engine,
          std::uint32_t engine_threads)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(
        0, std::size(kPool) - 1);
    ClientResult out;
    for (std::uint64_t i = 0; i < jobs; i++) {
        const WorkloadItem &item = kPool[pick(rng)];
        JobRequest req;
        req.graph = item.graph;
        req.algo = item.algo;
        req.engine = engine;
        req.source = item.source;
        req.allowCached = cached;
        req.allowWarmStart = cached;
        req.options.tolerance = 1e-6;
        req.options.numThreads = engine_threads;
        JobManager::Submitted sub;
        // Closed loop with retry: a QueueFull rejection is backpressure,
        // not failure — count it and resubmit after a short pause.
        while (!(sub = manager.submit(req)).ok()) {
            if (sub.error != SubmitError::QueueFull)
                return out;
            out.rejected++;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        manager.wait(sub.id);
        out.completed++;
    }
    return out;
}

ConfigResult
runConfig(GraphRegistry &registry, std::uint32_t clients,
          std::uint32_t workers, std::uint64_t jobs_per_client,
          bool cached, const std::string &engine,
          std::uint32_t engine_threads)
{
    ServeConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = 2 * clients;
    JobManager manager(registry, cfg);

    std::vector<std::thread> threads;
    std::vector<ClientResult> results(clients);
    std::atomic<bool> done{false};
    // Sample the process thread count while the load runs: with the
    // shared executor it must stay at pool + service workers + clients
    // no matter how many engine jobs run concurrently.
    long peak = processThreadCount();
    std::thread sampler([&done, &peak] {
        while (!done.load(std::memory_order_acquire)) {
            peak = std::max(peak, processThreadCount());
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    });
    Timer timer;
    for (std::uint32_t c = 0; c < clients; c++) {
        threads.emplace_back([&, c] {
            results[c] = runClient(manager, 1000 + c, jobs_per_client,
                                   cached, engine, engine_threads);
        });
    }
    for (auto &t : threads)
        t.join();
    const double elapsed = timer.seconds();
    done.store(true, std::memory_order_release);
    sampler.join();

    std::uint64_t completed = 0, rejected = 0;
    for (const auto &r : results) {
        completed += r.completed;
        rejected += r.rejected;
    }
    const ResultCache::Stats cs = manager.cache().stats();
    const ServeStats ss = manager.stats();

    ConfigResult row;
    row.clients = clients;
    row.workers = workers;
    row.engine = engine;
    row.cached = cached;
    row.jobs = completed;
    row.jobsPerSec = completed / elapsed;
    row.hitRate = cs.hitRate();
    row.warmStarts = ss.warmStarts;
    row.rejected = rejected;
    row.peakThreads = peak;
    std::printf(
        "clients=%2u workers=%2u engine=%-6s cached=%d | jobs=%llu  "
        "%8.1f jobs/s  hitrate=%.2f  warmstarts=%llu  rejected=%llu  "
        "peak_threads=%ld\n",
        clients, workers, engine.c_str(), cached ? 1 : 0,
        static_cast<unsigned long long>(completed), row.jobsPerSec,
        cs.hitRate(), static_cast<unsigned long long>(ss.warmStarts),
        static_cast<unsigned long long>(rejected), peak);
    std::fflush(stdout);
    return row;
}

// ---------------------------------------------------------------------
// Multi-tenant QoS stress
// ---------------------------------------------------------------------

/** One tenant of the stress mix. */
struct TenantSpec
{
    const char *name;
    double weight;
    std::uint32_t clients;    //!< offered-load knob (threads)
    double deadlineFrac;      //!< slice of submissions with a deadline
                              //!< far tighter than the queue wait
};

/**
 * gold:silver:bronze = 4:2:1 at equal offered load; free matches
 * bronze's weight but offers ~4x its load (and a slice of doomed
 * deadlines), so fairness — not arrival order — must set the shares.
 */
const TenantSpec kTenantMix[] = {
    {"gold", 4.0, 1, 0.0},
    {"silver", 2.0, 1, 0.0},
    {"bronze", 1.0, 1, 0.0},
    {"free", 1.0, 4, 0.05},
};

/** Per-tenant outcome of the stress, serialised to JSON. */
struct QosRow
{
    std::string tenant;
    double weight = 0.0;
    std::uint32_t clients = 0;
    TenantServeStats stats;
    double share = 0.0;    //!< completed / total completed
    double target = 0.0;   //!< weight / sum(weights)
    double err = 0.0;      //!< |share - target| / target
};

struct QosSummary
{
    double seconds = 0.0;
    std::uint32_t workers = 0;
    std::size_t queueCapacity = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t shedAdmission = 0;
    double maxErr = 0.0;
    std::vector<QosRow> rows;
};

/**
 * One stress client: flood the service with small uncacheable pr jobs
 * for this tenant, keeping up to `window` in flight (waiting the
 * oldest out when the window is full).  Shed submissions fail fast —
 * no wait, no retry — which is the point of shedding.
 */
void
runQosClient(JobManager &manager, const TenantSpec &spec,
             std::uint32_t seed, const std::atomic<bool> &stop)
{
    constexpr std::size_t kWindow = 48;
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::deque<JobId> window;
    while (!stop.load(std::memory_order_acquire)) {
        JobRequest req;
        req.graph = "tiny";
        req.algo = "pr";
        req.engine = "serial";
        req.tenant = spec.name;
        req.allowCached = false;
        req.allowWarmStart = false;
        req.options.tolerance = 1e-5;
        req.options.numThreads = 1;
        if (spec.deadlineFrac > 0.0 && coin(rng) < spec.deadlineFrac)
            req.timeoutSeconds = 0.02;
        const JobManager::Submitted sub = manager.submit(req);
        if (sub.ok()) {
            window.push_back(sub.id);
        } else if (sub.error == SubmitError::QueueFull) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        // SubmitError::Shed falls through with no sleep: the client
        // learnt instantly that the job was doomed.
        while (window.size() >= kWindow) {
            manager.wait(window.front(), 5.0);
            window.pop_front();
        }
    }
    for (const JobId id : window)
        manager.cancel(id);
}

QosSummary
runQosStress(GraphRegistry &registry, double seconds,
             std::uint32_t workers, std::size_t queue_capacity)
{
    ServeConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = queue_capacity;
    cfg.cacheCapacity = 8;
    cfg.maxRetainedJobs = 4 * queue_capacity;
    cfg.shedOnDeadline = true;
    for (const TenantSpec &spec : kTenantMix)
        cfg.tenantQos[spec.name] = TenantQos{spec.weight, 0, 0};
    JobManager manager(registry, cfg);

    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    std::uint32_t seed = 7000;
    for (const TenantSpec &spec : kTenantMix) {
        for (std::uint32_t c = 0; c < spec.clients; c++) {
            clients.emplace_back([&manager, &spec, &stop, seed] {
                runQosClient(manager, spec, seed, stop);
            });
            seed++;
        }
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    // Snapshot while the offered load is still running, so the window
    // measures steady-state fairness, not drain-out.
    const auto per_tenant = manager.tenantStats();
    const ServeStats global = manager.stats();
    stop.store(true, std::memory_order_release);
    for (auto &t : clients)
        t.join();
    manager.shutdown();

    double total_weight = 0.0;
    std::uint64_t total_completed = 0;
    for (const TenantSpec &spec : kTenantMix) {
        total_weight += spec.weight;
        auto it = per_tenant.find(spec.name);
        if (it != per_tenant.end())
            total_completed += it->second.completed;
    }

    QosSummary out;
    out.seconds = seconds;
    out.workers = workers;
    out.queueCapacity = queue_capacity;
    out.submitted = global.submitted;
    out.completed = total_completed;
    out.shed = global.shed;
    out.shedAdmission = global.shedAdmission;
    for (const TenantSpec &spec : kTenantMix) {
        QosRow row;
        row.tenant = spec.name;
        row.weight = spec.weight;
        row.clients = spec.clients;
        auto it = per_tenant.find(spec.name);
        if (it != per_tenant.end())
            row.stats = it->second;
        row.share = total_completed > 0
                        ? static_cast<double>(row.stats.completed) /
                              static_cast<double>(total_completed)
                        : 0.0;
        row.target = spec.weight / total_weight;
        row.err = std::abs(row.share - row.target) / row.target;
        out.maxErr = std::max(out.maxErr, row.err);
        std::printf(
            "qos tenant=%-6s weight=%.0f clients=%u | submitted=%llu "
            "completed=%llu shed=%llu shedadm=%llu rejected=%llu | "
            "share=%.3f target=%.3f err=%.1f%%\n",
            row.tenant.c_str(), row.weight, row.clients,
            static_cast<unsigned long long>(row.stats.submitted),
            static_cast<unsigned long long>(row.stats.completed),
            static_cast<unsigned long long>(row.stats.shed),
            static_cast<unsigned long long>(row.stats.shedAdmission),
            static_cast<unsigned long long>(row.stats.rejected),
            row.share, row.target, 100.0 * row.err);
        out.rows.push_back(std::move(row));
    }
    std::printf("qos total: submitted=%llu completed=%llu shed=%llu "
                "shedadm=%llu max_err=%.1f%%\n",
                static_cast<unsigned long long>(out.submitted),
                static_cast<unsigned long long>(out.completed),
                static_cast<unsigned long long>(out.shed),
                static_cast<unsigned long long>(out.shedAdmission),
                100.0 * out.maxErr);
    std::fflush(stdout);
    return out;
}

void
writeJson(const std::vector<ConfigResult> &rows, const QosSummary &qos,
          const std::string &path)
{
    std::ofstream ofs(path);
    ofs << "{\n  \"benchmark\": \"serve_throughput\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); i++) {
        const ConfigResult &r = rows[i];
        ofs << "    {\"clients\": " << r.clients
            << ", \"workers\": " << r.workers << ", \"engine\": \""
            << r.engine << "\", \"cached\": " << (r.cached ? 1 : 0)
            << ", \"jobs\": " << r.jobs << ", \"jobs_per_sec\": "
            << r.jobsPerSec << ", \"hit_rate\": " << r.hitRate
            << ", \"warm_starts\": " << r.warmStarts
            << ", \"rejected\": " << r.rejected
            << ", \"peak_threads\": " << r.peakThreads << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    ofs << "  ],\n";
    ofs << "  \"qos_stress\": {\n"
        << "    \"seconds\": " << qos.seconds
        << ", \"workers\": " << qos.workers
        << ", \"queue_capacity\": " << qos.queueCapacity
        << ", \"submitted\": " << qos.submitted
        << ", \"completed\": " << qos.completed
        << ", \"shed\": " << qos.shed
        << ", \"shed_admission\": " << qos.shedAdmission
        << ", \"max_share_err\": " << qos.maxErr << ",\n"
        << "    \"tenants\": [\n";
    for (std::size_t i = 0; i < qos.rows.size(); i++) {
        const QosRow &r = qos.rows[i];
        ofs << "      {\"tenant\": \"" << r.tenant
            << "\", \"weight\": " << r.weight
            << ", \"clients\": " << r.clients
            << ", \"submitted\": " << r.stats.submitted
            << ", \"completed\": " << r.stats.completed
            << ", \"shed\": " << r.stats.shed
            << ", \"shed_admission\": " << r.stats.shedAdmission
            << ", \"rejected\": " << r.stats.rejected
            << ", \"cancelled\": " << r.stats.cancelled
            << ", \"share\": " << r.share
            << ", \"target\": " << r.target
            << ", \"err\": " << r.err << "}"
            << (i + 1 < qos.rows.size() ? "," : "") << "\n";
    }
    ofs << "    ]\n  }\n}\n";
    std::printf("wrote %s (%zu rows + qos stress)\n", path.c_str(),
                rows.size());
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declareDouble("scale", 0.1, "dataset scale factor");
    flags.declareInt("jobs", 40, "jobs per client");
    flags.declareInt("max-clients", 8, "largest client count");
    flags.declareInt("async-threads", 4,
                     "numThreads of each async engine job");
    flags.declare("json", "BENCH_serve.json",
                  "output file for the machine-readable results");
    flags.declareInt("sample-ms", 0,
                     "run the background metrics sampler at this "
                     "interval (0 = off); used to bound its overhead");
    flags.declareDouble("qos-seconds", 3.0,
                        "duration of the multi-tenant QoS stress "
                        "(0 = skip it)");
    flags.declareInt("qos-workers", 2,
                     "service workers during the QoS stress");
    flags.declareInt("qos-queue", 192,
                     "admission queue capacity during the QoS stress");
    if (!flags.parse(argc, argv))
        return 0;
    const double scale = flags.getDouble("scale");
    const auto jobs =
        static_cast<std::uint64_t>(flags.getInt("jobs"));
    const auto max_clients =
        static_cast<std::uint32_t>(flags.getInt("max-clients"));
    const auto async_threads =
        static_cast<std::uint32_t>(flags.getInt("async-threads"));

    // The acceptance knob for the sampler: re-run with --sample-ms=10
    // and compare jobs/s against the default run to bound the
    // background snapshot cost (< 2% is the bar; it is one registry
    // mutex + relaxed loads per tick, nowhere near any hot path).
    const std::int64_t sample_ms = flags.getInt("sample-ms");
    if (sample_ms > 0)
        obs::startSampler(static_cast<double>(sample_ms) / 1000.0);

    GraphRegistry registry;
    registry.add("web", makeDataset("WT", scale).graph, 512);
    registry.add("road", makeDataset("PS", scale).graph, 512);
    // The QoS stress wants jobs cheap enough that thousands complete
    // in a few seconds — fairness is about counts, not engine speed.
    registry.add("tiny", makeDataset("WT", 0.02).graph, 256);
    std::printf("serve_throughput: scale=%.2f jobs/client=%llu "
                "sample-ms=%lld\n",
                scale, static_cast<unsigned long long>(jobs),
                static_cast<long long>(sample_ms));

    std::vector<ConfigResult> rows;
    // Cache disabled: every job runs the engine (pure service overhead
    // + engine throughput).  Cache enabled: the 8-job pool repeats, so
    // the steady state is mostly hits.
    for (const bool cached : {false, true})
        for (std::uint32_t clients = 1; clients <= max_clients;
             clients *= 2)
            rows.push_back(runConfig(registry, clients, /*workers=*/4,
                                     jobs, cached, "serial", 1));
    // The multi-tenant async case: every job is a threaded engine run.
    // With the shared executor they split one pool; without it (the
    // old design) they each spawned async-threads workers and the
    // machine oversubscribed clients x async-threads fold.
    for (std::uint32_t clients = 1; clients <= max_clients;
         clients *= 2)
        rows.push_back(runConfig(registry, clients,
                                 /*workers=*/std::max(4u, clients), jobs,
                                 /*cached=*/false, "async",
                                 async_threads));

    QosSummary qos;
    const double qos_seconds = flags.getDouble("qos-seconds");
    if (qos_seconds > 0.0) {
        qos = runQosStress(
            registry, qos_seconds,
            static_cast<std::uint32_t>(flags.getInt("qos-workers")),
            static_cast<std::size_t>(flags.getInt("qos-queue")));
    }
    writeJson(rows, qos, flags.get("json"));
    if (sample_ms > 0)
        obs::stopSampler();
    return 0;
}
