/**
 * @file
 * Prometheus text exposition (format version 0.0.4) of the metrics
 * registry, so `abcd_serve --metrics-port` is scrapeable by a stock
 * Prometheus/Grafana stack without an adapter.
 *
 * Mapping rules:
 *  - every name is prefixed `graphabcd_` and sanitised to the metric
 *    charset `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots become underscores);
 *  - counters get the conventional `_total` suffix;
 *  - histograms render cumulative `_bucket{le="..."}` lines ending in
 *    `le="+Inf"` (equal to `_count`), plus `_sum` and `_count`.
 */

#ifndef GRAPHABCD_OBS_PROMETHEUS_HH
#define GRAPHABCD_OBS_PROMETHEUS_HH

#include <string>

namespace graphabcd {

struct MetricsSnapshot;

/** @return `name` mapped into the Prometheus metric-name charset,
 *  `graphabcd_` prefix included. */
std::string prometheusName(const std::string &name);

/** Render one snapshot as text exposition. */
std::string prometheusText(const MetricsSnapshot &snap);

/** Render the process-wide registry as text exposition. */
std::string prometheusText();

} // namespace graphabcd

#endif // GRAPHABCD_OBS_PROMETHEUS_HH
