#include "obs/flight.hh"

#if GRAPHABCD_OBS_ENABLED

#include <csignal>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace graphabcd {
namespace obs {

namespace {

/** JSON string literal (quotes included), control chars escaped. */
std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char esc[8];
            std::snprintf(esc, sizeof(esc), "\\u%04x",
                          static_cast<unsigned char>(c));
            out += esc;
        } else {
            out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

/** One latch for the signal path; a handler must never re-enter. */
std::atomic<bool> g_signalDumping{false};

void
flightSignalHandler(int sig)
{
    // Best effort: this allocates and takes mutexes, which strict
    // async-signal-safety forbids — but the process is about to die,
    // and a partial black box beats none.  The latch stops a second
    // fault inside the handler from recursing.
    if (!g_signalDumping.exchange(true)) {
        FlightRecorder::global().dumpIfArmed("fatal signal " +
                                             std::to_string(sig));
    }
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

} // namespace

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder instance;
    return instance;
}

void
FlightRecorder::arm(std::string default_path)
{
    {
        std::lock_guard<std::mutex> lock(mtx_);
        armed_ = true;
        path_ = std::move(default_path);
    }
    // The tap runs under the Logger mutex; note() takes only the
    // recorder mutex, and no recorder path logs while holding it, so
    // the lock order Logger -> recorder is acyclic.
    Logger::global().setTap([](LogLevel, const std::string &line) {
        FlightRecorder &self = global();
        std::lock_guard<std::mutex> lock(self.mtx_);
        std::string trimmed = line;
        while (!trimmed.empty() && trimmed.back() == '\n')
            trimmed.pop_back();
        self.logLines_.push_back(std::move(trimmed));
        while (self.logLines_.size() > kMaxLogLines)
            self.logLines_.pop_front();
    });
    setFatalHook(+[](const char *message) {
        global().note("fatal", message);
        global().dumpIfArmed(std::string("fatal: ") + message);
    });
}

void
FlightRecorder::disarm()
{
    setFatalHook(nullptr);
    Logger::global().setTap(nullptr);
    std::lock_guard<std::mutex> lock(mtx_);
    armed_ = false;
    path_.clear();
}

bool
FlightRecorder::armed() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return armed_;
}

std::string
FlightRecorder::armedPath() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return path_;
}

void
FlightRecorder::armSignals()
{
    for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL})
        std::signal(sig, flightSignalHandler);
}

void
FlightRecorder::note(const char *component, std::string text)
{
    std::string entry = std::string(component) + ": " + std::move(text);
    std::lock_guard<std::mutex> lock(mtx_);
    notes_.push_back(Note{TraceRecorder::nowMicros(), std::move(entry)});
    while (notes_.size() > kMaxNotes)
        notes_.pop_front();
}

std::uint64_t
FlightRecorder::addProvider(std::string name,
                            std::function<std::string()> provider)
{
    std::lock_guard<std::mutex> lock(mtx_);
    const std::uint64_t token = nextToken_++;
    providers_.push_back(
        Provider{token, std::move(name), std::move(provider)});
    return token;
}

void
FlightRecorder::removeProvider(std::uint64_t token)
{
    std::lock_guard<std::mutex> lock(mtx_);
    for (auto it = providers_.begin(); it != providers_.end(); ++it) {
        if (it->token == token) {
            providers_.erase(it);
            return;
        }
    }
}

std::string
FlightRecorder::renderJson(const std::string &reason)
{
    std::deque<Note> notes;
    std::deque<std::string> log_lines;
    std::vector<Provider> providers;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        notes = notes_;
        log_lines = logLines_;
        providers = providers_;
    }

    std::ostringstream os;
    os << "{\n\"reason\":" << jsonQuote(reason)
       << ",\n\"captured_at_micros\":" << TraceRecorder::nowMicros();

    os << ",\n\"notes\":[";
    bool first = true;
    for (const Note &n : notes) {
        os << (first ? "" : ",") << "\n{\"ts_micros\":" << n.tsMicros
           << ",\"text\":" << jsonQuote(n.text) << "}";
        first = false;
    }
    os << "]";

    os << ",\n\"log\":[";
    first = true;
    for (const std::string &line : log_lines) {
        os << (first ? "" : ",") << "\n" << jsonQuote(line);
        first = false;
    }
    os << "]";

    // Providers run here, outside the recorder mutex, so they may take
    // their own locks (the serve provider snapshots under the
    // JobManager mutex).
    os << ",\n\"providers\":{";
    first = true;
    for (const Provider &p : providers) {
        os << (first ? "" : ",") << "\n"
           << jsonQuote(p.name) << ":" << (p.fn ? p.fn() : "null");
        first = false;
    }
    os << "}";

    const MetricsSnapshot snap = MetricsRegistry::global().snapshotAll();
    os << ",\n\"metrics\":{\"counters\":{";
    first = true;
    for (const auto &[name, value] : snap.counters) {
        os << (first ? "" : ",") << jsonQuote(name) << ":" << value;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : snap.gauges) {
        os << (first ? "" : ",") << jsonQuote(name) << ":" << value;
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : snap.histograms) {
        os << (first ? "" : ",") << "\n"
           << jsonQuote(name) << ":{\"count\":" << h.count
           << ",\"sum\":" << h.sum << ",\"mean\":" << h.mean()
           << ",\"min\":" << h.min << ",\"max\":" << h.max
           << ",\"p50\":" << h.quantile(0.5)
           << ",\"p99\":" << h.quantile(0.99);
        if (h.hasExemplar) {
            os << ",\"exemplar\":{\"value\":" << h.exemplarValue
               << ",\"job\":" << h.exemplarJob
               << ",\"span\":" << h.exemplarSpan << "}";
        }
        os << "}";
        first = false;
    }
    os << "}}";

    os << ",\n\"trace\":";
    TraceRecorder::global().writeChromeTrace(os);
    os << "}\n";
    return os.str();
}

bool
FlightRecorder::dump(const std::string &path, const std::string &reason)
{
    if (dumping_.exchange(true))
        return false;   // a dump is in flight; never recurse
    bool ok = false;
    {
        const std::string body = renderJson(reason);
        std::ofstream out(path);
        if (out) {
            out << body;
            ok = static_cast<bool>(out);
        }
    }
    dumping_.store(false);
    if (ok) {
        GRAPHABCD_LOG_WARN("flight", "flight recorder dumped",
                           LOGF("path", path), LOGF("reason", reason));
    } else {
        GRAPHABCD_LOG_ERROR("flight", "flight recorder dump failed",
                            LOGF("path", path), LOGF("reason", reason));
    }
    return ok;
}

bool
FlightRecorder::dumpIfArmed(const std::string &reason)
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        if (!armed_ || path_.empty())
            return false;
        path = path_;
    }
    return dump(path, reason);
}

} // namespace obs
} // namespace graphabcd

#endif // GRAPHABCD_OBS_ENABLED
