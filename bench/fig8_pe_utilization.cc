/**
 * @file
 * Reproduces paper Fig. 8: FPGA PE utilization of asynchronous versus
 * synchronous (BSP) GraphABCD as PE count and CPU threads scale down
 * from 16/14 to 1/1 together, on the LJ stand-in.
 *
 * Expected shape: async improves utilization 1.6-2.4x; utilization
 * drops sharply from 8 to 16 PEs as the CPU-FPGA link saturates.
 */

#include "bench_common.hh"

namespace graphabcd {
namespace {

using namespace bench;

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declareInt("block-size", 512, "block size");
    flags.declare("graph", "LJ", "dataset key");
    if (!flags.parse(argc, argv))
        return 0;

    const auto block_size =
        static_cast<VertexId>(flags.getInt("block-size"));
    Dataset ds = loadDataset(flags.get("graph"), flags);
    BlockPartition g(ds.graph, block_size);

    Table table({"PEs", "CPU threads", "async util", "barrier util",
                 "bsp util", "async/sync"});

    const std::uint32_t pe_steps[] = {1, 2, 4, 8, 16};
    for (std::uint32_t pes : pe_steps) {
        // The paper scales threads down with PEs (16..1 / 14..1).
        const std::uint32_t threads =
            std::max<std::uint32_t>(1, pes * 14 / 16);
        auto util = [&](ExecMode mode) {
            EngineOptions opt;
            opt.blockSize = block_size;
            opt.mode = mode;
            HarpConfig cfg;
            cfg.numPes = pes;
            cfg.cpuThreads = threads;
            RunResult r = abcdPagerank(g, opt, cfg);
            return r.sim.peUtilization;
        };
        double a = util(ExecMode::Async);
        double b = util(ExecMode::Barrier);
        double j = util(ExecMode::Bsp);
        // "Synchronous GraphABCD" in the paper's Fig. 8 is the
        // barriered variant; report async/barrier as the headline ratio.
        table.row()
            .add(static_cast<std::uint64_t>(pes))
            .add(static_cast<std::uint64_t>(threads))
            .add(a, 3)
            .add(b, 3)
            .add(j, 3)
            .add(b > 0 ? a / b : 0.0, 3);
    }

    emitTable(table, flags);
    std::fprintf(stderr,
                 "info: paper shape: async 1.6-2.4x over sync; sharp "
                 "drop 8->16 PEs (bandwidth saturation).\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
