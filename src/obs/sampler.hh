/**
 * @file
 * Sampler — a background thread that turns the point-in-time registry
 * into time series.
 *
 * Counters and gauges answer "how much so far"; the questions the
 * paper and the serve layer actually raise — does queue depth spike
 * under admission bursts, does PE utilization sag when the host starves
 * the FPGA, does executor backlog drain — need values *over time*.
 * The sampler snapshots every registered counter and gauge at a fixed
 * interval into one SampleSeries per metric.  Each series is a
 * fixed-capacity buffer with stride downsampling (when full, every
 * other point is dropped and the keep-stride doubles), so a service
 * that runs for days keeps a bounded, progressively coarser history
 * instead of growing without bound.
 *
 * Sampling cost is one registry snapshot per tick — a mutex plus
 * relaxed loads, nothing on any engine hot path — which is why the
 * acceptance bar of < 2% serve-throughput overhead at a 10 ms interval
 * holds.  Histograms are deliberately not sampled: their bucket arrays
 * are large, and dashboards derive rates from the counter series.
 *
 * Series keys are "counter:<name>" / "gauge:<name>" so both kinds can
 * share one namespace in the CSV dump and the /series HTTP endpoint.
 */

#ifndef GRAPHABCD_OBS_SAMPLER_HH
#define GRAPHABCD_OBS_SAMPLER_HH

#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace graphabcd {

class MetricsRegistry;

/** One (time, value) sample of a metric. */
struct SamplePoint
{
    double tSeconds = 0.0;  //!< seconds since the sampler started
    double value = 0.0;
};

/** The history of one metric; same downsampling scheme as
 *  ConvergenceSeries. */
class SampleSeries
{
  public:
    explicit SampleSeries(std::string key, std::size_t capacity);

    SampleSeries(const SampleSeries &) = delete;
    SampleSeries &operator=(const SampleSeries &) = delete;

    void record(double t_seconds, double value);

    const std::string &key() const { return key_; }

    /** @return a consistent copy of the recorded points. */
    std::vector<SamplePoint> points() const;

    std::size_t size() const;

    /** @return the last recorded point (all-zero when empty). */
    SamplePoint back() const;

  private:
    const std::string key_;
    const std::size_t capacity_;

    mutable std::mutex mtx_;
    std::vector<SamplePoint> points_;
    std::uint64_t tick_ = 0;
    std::uint64_t stride_ = 1;
};

/** Periodic registry snapshotter; one per process in practice. */
class Sampler
{
  public:
    /** The process-wide sampler (what --sample-ms starts). */
    static Sampler &global();

    /** @param capacity points retained per series before downsampling. */
    explicit Sampler(MetricsRegistry &registry,
                     std::size_t capacity = 1024);

    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /**
     * Start (or restart) the background thread.  Series recorded so
     * far are kept; the time axis keeps counting from the first start.
     * @param interval_seconds clamped to >= 1 ms.
     */
    void start(double interval_seconds);

    /** Stop the thread; series stay readable.  Idempotent. */
    void stop();

    bool running() const;

    double intervalSeconds() const;

    /** Take one snapshot right now (also what the thread does). */
    void sampleOnce();

    /** @return all series, sorted by key. */
    std::vector<std::shared_ptr<const SampleSeries>> series() const;

    std::size_t seriesCount() const;

    /** Drop all series (a running thread repopulates them). */
    void clear();

    /** CSV: `key,t_seconds,value` with a header row. */
    std::string csv() const;

  private:
    void loop();
    SampleSeries &seriesFor(const std::string &key);

    MetricsRegistry &registry_;
    const std::size_t capacity_;

    mutable std::mutex mtx_;  //!< series map + thread lifecycle
    std::map<std::string, std::shared_ptr<SampleSeries>> series_;
    std::thread thread_;
    double intervalSeconds_ = 0.0;
    double epochSeconds_ = -1.0;  //!< monotonic time of first start
    bool running_ = false;
    bool stopRequested_ = false;

    std::mutex wakeMtx_;
    std::condition_variable wakeCv_;
};

} // namespace graphabcd

#endif // GRAPHABCD_OBS_SAMPLER_HH
