/**
 * @file
 * Lightweight statistics registry.
 *
 * Components (schedulers, simulator units, engines) register named
 * counters and scalars here so that benchmarks and tests can inspect
 * behaviour without poking at private state.  Modeled loosely after the
 * gem5 stats package, scaled down to what this project needs.
 */

#ifndef GRAPHABCD_SUPPORT_STATS_HH
#define GRAPHABCD_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/logging.hh"

namespace graphabcd {

/**
 * Accumulating distribution: tracks count, sum, min, max and mean of the
 * samples pushed into it.
 */
class Distribution
{
  public:
    /** Add one sample. */
    void
    sample(double value)
    {
        if (count_ == 0 || value < min_)
            min_ = value;
        if (count_ == 0 || value > max_)
            max_ = value;
        sum_ += value;
        count_++;
    }

    /** Merge another distribution into this one. */
    void
    merge(const Distribution &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0 || other.min_ < min_)
            min_ = other.min_;
        if (count_ == 0 || other.max_ > max_)
            max_ = other.max_;
        sum_ += other.sum_;
        count_ += other.count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Flat name -> value store for counters, scalars and distributions.
 * Names are conventionally dotted paths, e.g. "harp.pe3.busy_cycles".
 */
class StatRegistry
{
  public:
    /** Add `delta` to the named counter (creating it at zero). */
    void
    incr(const std::string &name, std::uint64_t delta = 1)
    {
        counters[name] += delta;
    }

    /** Set a named scalar (overwrites). */
    void
    set(const std::string &name, double value)
    {
        scalars[name] = value;
    }

    /** Push a sample into the named distribution. */
    void
    sample(const std::string &name, double value)
    {
        dists[name].sample(value);
    }

    /** @return counter value, 0 when absent. */
    std::uint64_t
    counter(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** @return scalar value, 0.0 when absent. */
    double
    scalar(const std::string &name) const
    {
        auto it = scalars.find(name);
        return it == scalars.end() ? 0.0 : it->second;
    }

    /** @return distribution (empty default when absent). */
    const Distribution &
    distribution(const std::string &name) const
    {
        static const Distribution empty;
        auto it = dists.find(name);
        return it == dists.end() ? empty : it->second;
    }

    /** @return whether the name exists in any of the three stores. */
    bool
    has(const std::string &name) const
    {
        return counters.count(name) || scalars.count(name) ||
               dists.count(name);
    }

    /** Erase everything. */
    void
    clear()
    {
        counters.clear();
        scalars.clear();
        dists.clear();
    }

    /** Merge another registry (counters add, scalars overwrite). */
    void merge(const StatRegistry &other);

    /** @return all entries rendered as "name = value" lines, sorted. */
    std::vector<std::string> dump() const;

  private:
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> scalars;
    std::map<std::string, Distribution> dists;
};

} // namespace graphabcd

#endif // GRAPHABCD_SUPPORT_STATS_HH
