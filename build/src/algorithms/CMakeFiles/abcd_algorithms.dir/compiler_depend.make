# Empty compiler generated dependencies file for abcd_algorithms.
# This may be replaced when dependencies are built.
