#include "support/logging.hh"

namespace graphabcd {

namespace detail {

bool &
verboseFlag()
{
    static bool flag = true;
    return flag;
}

} // namespace detail

void
setVerbose(bool verbose)
{
    detail::verboseFlag() = verbose;
}

bool
verbose()
{
    return detail::verboseFlag();
}

} // namespace graphabcd
