/**
 * @file
 * Quickstart: the minimal GraphABCD workflow.
 *
 *   1. build (or load) a graph as an EdgeList;
 *   2. partition it into destination-sliced blocks;
 *   3. pick a vertex program and engine options;
 *   4. run the asynchronous BCD engine;
 *   5. read the results.
 *
 * Build and run:   ./build/examples/quickstart
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "algorithms/pagerank.hh"
#include "core/async_engine.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"

using namespace graphabcd;

int
main()
{
    // 1. A synthetic power-law graph (or graphabcd::loadEdgeList(path)).
    Rng rng(/*seed=*/42);
    EdgeList graph = generateRmat(/*vertices=*/10000, /*edges=*/80000,
                                  rng);

    // 2. Destination-sliced block partition; the block size is the
    //    paper's central design knob (Sec. III-B).
    BlockPartition partition(graph, /*block_size=*/256);

    // 3. PageRank with the default damping factor, asynchronous
    //    barrierless execution on 4 host threads, priority scheduling.
    EngineOptions options;
    options.blockSize = 256;
    options.schedule = Schedule::Priority;
    options.numThreads = 4;
    options.tolerance = 1e-9;

    // 4. Run to convergence.
    AsyncEngine<PageRankProgram> engine(partition, PageRankProgram(),
                                        options);
    std::vector<double> ranks;
    EngineReport report = engine.run(ranks);

    // 5. Report.
    std::printf("converged: %s after %.2f epochs "
                "(%llu block updates, %.1f ms wall)\n",
                report.converged ? "yes" : "no", report.epochs,
                static_cast<unsigned long long>(report.blockUpdates),
                report.seconds * 1e3);

    std::vector<VertexId> order(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); v++)
        order[v] = v;
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&ranks](VertexId a, VertexId b) {
                          return ranks[a] > ranks[b];
                      });
    std::printf("top 5 vertices by rank:\n");
    for (int i = 0; i < 5; i++) {
        std::printf("  #%d vertex %u  rank %.6f\n", i + 1, order[i],
                    ranks[order[i]]);
    }
    return 0;
}
