# Empty dependencies file for abcd_harp.
# This may be replaced when dependencies are built.
