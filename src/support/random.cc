#include "support/random.hh"

#include <cmath>

namespace graphabcd {

double
Rng::nextGaussian()
{
    // Polar Box-Muller; discard the second deviate to keep the generator
    // stateless beyond its stream position.
    for (;;) {
        double u = 2.0 * nextDouble() - 1.0;
        double v = 2.0 * nextDouble() - 1.0;
        double s2 = u * u + v * v;
        if (s2 > 0.0 && s2 < 1.0)
            return u * std::sqrt(-2.0 * std::log(s2) / s2);
    }
}

namespace {

/** Generalised harmonic number H_{n,theta}. */
double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; i++)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

} // namespace

ZipfSampler::ZipfSampler(std::uint64_t n_items, double theta_arg)
    : n(n_items), theta(theta_arg)
{
    GRAPHABCD_ASSERT(n > 0, "ZipfSampler over an empty domain");
    if (theta <= 0.0) {
        alpha = zetan = eta = 0.0;
        return;
    }
    // Gray's method (as popularised by the YCSB generator).
    zetan = zeta(n, theta);
    alpha = 1.0 / (1.0 - theta);
    double zeta2 = zeta(2, theta);
    eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
          (1.0 - zeta2 / zetan);
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (theta <= 0.0)
        return rng.nextBounded(n);

    double u = rng.nextDouble();
    double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n) *
        std::pow(eta * u - eta + 1.0, alpha));
    return idx >= n ? n - 1 : idx;
}

} // namespace graphabcd
