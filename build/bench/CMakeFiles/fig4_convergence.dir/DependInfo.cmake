
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_convergence.cc" "bench/CMakeFiles/fig4_convergence.dir/fig4_convergence.cc.o" "gcc" "bench/CMakeFiles/fig4_convergence.dir/fig4_convergence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algorithms/CMakeFiles/abcd_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/harp/CMakeFiles/abcd_harp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/graphmat/CMakeFiles/abcd_graphmat.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/abcd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/abcd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/abcd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/abcd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
