# Empty dependencies file for route_planner.
# This may be replaced when dependencies are built.
