/**
 * @file
 * GraphMat program adapters for the paper's three evaluation algorithms
 * (PR, SSSP, CF) plus BFS and CC, mirroring GraphMat's shipped demos.
 */

#ifndef GRAPHABCD_BASELINES_GRAPHMAT_PROGRAMS_HH
#define GRAPHABCD_BASELINES_GRAPHMAT_PROGRAMS_HH

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "baselines/graphmat/engine.hh"
#include "support/random.hh"

namespace graphabcd {
namespace graphmat {

/** PageRank: state carries (rank, out-degree) so messages are rank/deg. */
struct PageRankSpmv
{
    struct Value
    {
        double rank = 0.0;
        std::uint32_t outDegree = 0;
    };
    using Message = double;

    double alpha = 0.85;
    const std::vector<std::uint32_t> *degrees = nullptr;
    std::uint32_t n = 1;

    PageRankSpmv(double damping, const std::vector<std::uint32_t> &degs)
        : alpha(damping), degrees(&degs),
          n(static_cast<std::uint32_t>(degs.size()))
    {}

    Value
    init(VertexId v, std::uint32_t num_vertices) const
    {
        return Value{1.0 / std::max<double>(num_vertices, 1.0),
                     (*degrees)[v]};
    }

    Message identity() const { return 0.0; }

    Message
    processEdge(const Value &, const Value &src, float) const
    {
        return src.outDegree ? src.rank / src.outDegree : 0.0;
    }

    Message reduce(Message a, Message b) const { return a + b; }

    Value
    apply(VertexId, const Message &acc, const Value &old) const
    {
        return Value{(1.0 - alpha) / std::max<double>(n, 1.0) +
                         alpha * acc,
                     old.outDegree};
    }

    double
    delta(const Value &a, const Value &b) const
    {
        return std::abs(a.rank - b.rank);
    }

    /** PR recomputes from all in-edges: full BSP sweeps. */
    bool usesFiltering() const { return false; }
};

/** SSSP with GraphMat's active-vertex filtering (relaxed frontier). */
struct SsspSpmv
{
    using Value = double;
    using Message = double;

    VertexId source = 0;
    static constexpr double unreachable = 1e18;

    explicit SsspSpmv(VertexId src) : source(src) {}

    Value
    init(VertexId v, std::uint32_t) const
    {
        return v == source ? 0.0 : unreachable;
    }

    Message identity() const { return unreachable; }

    Message
    processEdge(const Value &, const Value &src, float w) const
    {
        return src >= unreachable ? unreachable
                                  : src + static_cast<double>(w);
    }

    Message reduce(Message a, Message b) const { return std::min(a, b); }

    Value
    apply(VertexId, const Message &acc, const Value &old) const
    {
        return std::min(old, acc);
    }

    double delta(const Value &a, const Value &b) const
    {
        return std::abs(a - b);
    }

    /** Monotone min-fold: GraphMat's SSSP active-vertex filtering. */
    bool usesFiltering() const { return true; }
};

/** BFS = unit-weight SSSP. */
struct BfsSpmv : SsspSpmv
{
    explicit BfsSpmv(VertexId src) : SsspSpmv(src) {}

    Message
    processEdge(const Value &, const Value &src, float) const
    {
        return src >= unreachable ? unreachable : src + 1.0;
    }
};

/** Connected components by min-label propagation (symmetrized input). */
struct CcSpmv
{
    using Value = double;
    using Message = double;

    Value init(VertexId v, std::uint32_t) const { return v; }

    Message
    identity() const
    {
        return std::numeric_limits<double>::infinity();
    }

    Message
    processEdge(const Value &, const Value &src, float) const
    {
        return src;
    }

    Message reduce(Message a, Message b) const { return std::min(a, b); }

    Value
    apply(VertexId, const Message &acc, const Value &old) const
    {
        return std::min(old, acc);
    }

    double delta(const Value &a, const Value &b) const
    {
        return std::abs(a - b);
    }

    /** Monotone min-fold: filtering is sound. */
    bool usesFiltering() const { return true; }
};

/**
 * Collaborative Filtering: full-batch gradient descent — GraphMat's CF
 * demo.  PROCESS_MESSAGE sees the destination property (GraphMat's API),
 * so the per-edge error term err*x_src - lambda*x_dst is computed
 * exactly as in CfProgram; the two runs differ only in the BCD design
 * options (block size |V|, Jacobi commits), which is precisely the
 * paper's Fig. 5 comparison.
 */
template <std::uint32_t H = 16>
struct CfSpmv
{
    using Value = std::array<float, H>;

    struct Message
    {
        std::array<double, H> grad{};
        std::uint32_t count = 0;
    };

    double alpha = 0.2;
    double lambda = 0.02;
    std::uint64_t seed = 7;

    CfSpmv() = default;
    CfSpmv(double lr, double reg, std::uint64_t s = 7)
        : alpha(lr), lambda(reg), seed(s)
    {}

    Value
    init(VertexId v, std::uint32_t) const
    {
        SplitMix64 sm(seed ^ (0x9E3779B97F4A7C15ULL * (v + 1)));
        Value out;
        const float scale = 1.0f / std::sqrt(static_cast<float>(H));
        for (std::uint32_t k = 0; k < H; k++) {
            auto bits = sm.next();
            float u = static_cast<float>(bits >> 11) * 0x1.0p-53f - 0.5f;
            out[k] = u * scale;
        }
        return out;
    }

    Message identity() const { return {}; }

    Message
    processEdge(const Value &dst, const Value &src, float rating) const
    {
        double dot = 0.0;
        for (std::uint32_t k = 0; k < H; k++)
            dot += static_cast<double>(dst[k]) * src[k];
        const double err = static_cast<double>(rating) - dot;
        Message m;
        m.count = 1;
        for (std::uint32_t k = 0; k < H; k++) {
            m.grad[k] = err * src[k] -
                        lambda * static_cast<double>(dst[k]);
        }
        return m;
    }

    Message
    reduce(Message a, const Message &b) const
    {
        for (std::uint32_t k = 0; k < H; k++)
            a.grad[k] += b.grad[k];
        a.count += b.count;
        return a;
    }

    Value
    apply(VertexId, const Message &acc, const Value &old) const
    {
        const double norm = 1.0 / std::max<double>(acc.count, 1.0);
        Value next;
        for (std::uint32_t k = 0; k < H; k++) {
            next[k] = static_cast<float>(
                static_cast<double>(old[k]) + alpha * norm * acc.grad[k]);
        }
        return next;
    }

    double
    delta(const Value &a, const Value &b) const
    {
        double l1 = 0.0;
        for (std::uint32_t k = 0; k < H; k++)
            l1 += std::abs(static_cast<double>(a[k]) -
                           static_cast<double>(b[k]));
        return l1;
    }

    /** Full-batch GD recomputes from all ratings: no filtering. */
    bool usesFiltering() const { return false; }
};

/**
 * RMSE over the user->item rating edges under GraphMat values (same
 * metric as cfRmse for the BCD engines).
 */
template <std::uint32_t H>
double
cfSpmvRmse(const EdgeList &ratings, const std::vector<std::array<float, H>> &x)
{
    double sq = 0.0;
    for (const Edge &e : ratings.edges()) {
        double dot = 0.0;
        for (std::uint32_t k = 0; k < H; k++)
            dot += static_cast<double>(x[e.src][k]) * x[e.dst][k];
        const double err = static_cast<double>(e.weight) - dot;
        sq += err * err;
    }
    return ratings.numEdges()
        ? std::sqrt(sq / static_cast<double>(ratings.numEdges()))
        : 0.0;
}

} // namespace graphmat
} // namespace graphabcd

#endif // GRAPHABCD_BASELINES_GRAPHMAT_PROGRAMS_HH
