/**
 * @file
 * Bounded multi-producer multi-consumer task queue.
 *
 * This is the *only* control-flow link between the CPU-side scheduler and
 * the accelerator PEs in GraphABCD (paper Fig. 2): the scheduler pushes
 * block ids into the accelerator task queue, PEs pull; finished block ids
 * flow back through the CPU task queue to the SCATTER threads.  The queue
 * therefore bounds the update-propagation delay, which is exactly the
 * bounded-staleness condition asynchronous BCD needs for convergence
 * (paper Sec. III-D).
 */

#ifndef GRAPHABCD_RUNTIME_TASK_QUEUE_HH
#define GRAPHABCD_RUNTIME_TASK_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "obs/obs.hh"
#include "support/logging.hh"

namespace graphabcd {

/**
 * Outcome of a non-blocking dequeue.  Empty and Drained are distinct on
 * purpose: a non-blocking consumer that treats them the same spins
 * forever once the queue is closed and emptied.
 */
enum class PopStatus
{
    Ok,      //!< an item was dequeued
    Empty,   //!< nothing available right now — retrying can succeed
    Drained, //!< closed and empty — no item will ever arrive
};

/**
 * Blocking bounded MPMC queue with close() semantics: after close(),
 * producers fail and consumers drain the remaining items, then see
 * std::nullopt.
 */
template <typename T>
class TaskQueue
{
  public:
    /** @param capacity maximum queued items; 0 means unbounded. */
    explicit TaskQueue(std::size_t capacity = 0) : cap(capacity) {}

    TaskQueue(const TaskQueue &) = delete;
    TaskQueue &operator=(const TaskQueue &) = delete;

    /**
     * Block until there is room, then enqueue.
     * @return false if the queue was closed before the item was accepted.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mtx);
        notFull.wait(lock, [this] {
            return closed || cap == 0 || items.size() < cap;
        });
        if (closed)
            return false;
        items.push_back(std::move(item));
        publishDepth(items.size());
        lock.unlock();
        notEmpty.notify_one();
        return true;
    }

    /**
     * Non-blocking enqueue.
     * @return false when full or closed.
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (closed || (cap != 0 && items.size() >= cap))
                return false;
            items.push_back(std::move(item));
            publishDepth(items.size());
        }
        notEmpty.notify_one();
        return true;
    }

    /**
     * Block until an item is available or the queue is closed and empty.
     * @return the item, or std::nullopt on shutdown.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mtx);
        notEmpty.wait(lock, [this] { return closed || !items.empty(); });
        if (items.empty())
            return std::nullopt;
        T item = std::move(items.front());
        items.pop_front();
        publishDepth(items.size());
        observePop(item);
        lock.unlock();
        notFull.notify_one();
        return item;
    }

    /**
     * Non-blocking dequeue with closed-and-drained visibility.
     * @return Ok (out filled), Empty (retry later), or Drained (the
     *         queue is closed and empty — stop polling).
     */
    PopStatus
    tryPop(T &out)
    {
        std::unique_lock<std::mutex> lock(mtx);
        if (items.empty())
            return closed ? PopStatus::Drained : PopStatus::Empty;
        out = std::move(items.front());
        items.pop_front();
        publishDepth(items.size());
        observePop(out);
        lock.unlock();
        notFull.notify_one();
        return PopStatus::Ok;
    }

    /**
     * Non-blocking dequeue; std::nullopt when currently empty.
     * Cannot distinguish Empty from Drained — non-blocking consumers
     * that must terminate should use tryPop(T&) or isDrained().
     */
    std::optional<T>
    tryPop()
    {
        T item;
        if (tryPop(item) == PopStatus::Ok)
            return item;
        return std::nullopt;
    }

    /** Wake all waiters; subsequent pushes fail, pops drain then end. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            closed = true;
        }
        notEmpty.notify_all();
        notFull.notify_all();
    }

    /** @return current queue length (racy, for stats only). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return items.size();
    }

    /** @return whether close() has been called. */
    bool
    isClosed() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return closed;
    }

    /** @return whether the queue is closed *and* empty: terminal. */
    bool
    isDrained() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return closed && items.empty();
    }

    /** @return configured capacity (0 = unbounded). */
    std::size_t capacity() const { return cap; }

    /**
     * Publish the queue depth into `g` on every push/pop (under the
     * queue lock; one relaxed store).  Pass nullptr to detach.
     */
    void
    attachDepthGauge(obs::Gauge *g)
    {
        std::lock_guard<std::mutex> lock(mtx);
        depthGauge = g;
    }

    /**
     * Run `fn(item)` under the queue lock as each item is dequeued.
     * Because pops are serialized by the lock, anything `fn` observes
     * is ordered against every other pop — which is what makes
     * staleness measured here obey the FIFO bound (a reading taken
     * after pop() returns can be inflated arbitrarily by items popped
     * later that commit while the consumer is preempted).  Metrics
     * only; must not block.  Pass nullptr to detach.
     */
    void
    attachPopObserver(std::function<void(const T &)> fn)
    {
        std::lock_guard<std::mutex> lock(mtx);
        popObserver = std::move(fn);
    }

  private:
    void
    publishDepth(std::size_t depth)
    {
        if constexpr (obs::kEnabled) {
            if (depthGauge)
                depthGauge->set(static_cast<double>(depth));
        }
    }

    void
    observePop(const T &item)
    {
        if constexpr (obs::kEnabled) {
            if (popObserver)
                popObserver(item);
        }
    }

    const std::size_t cap;
    mutable std::mutex mtx;
    std::condition_variable notEmpty;
    std::condition_variable notFull;
    std::deque<T> items;
    bool closed = false;
    obs::Gauge *depthGauge = nullptr;
    std::function<void(const T &)> popObserver;
};

} // namespace graphabcd

#endif // GRAPHABCD_RUNTIME_TASK_QUEUE_HH
