/**
 * @file
 * Reproduces paper Table III: convergence rate (# of iterations) of
 * GraphABCD with priority and cyclic scheduling versus
 * GraphMat/Graphicionado (one column — they share algorithm design
 * options).  GraphMat reports BSP supersteps; GraphABCD reports
 * |V|-normalised epochs, fractional by design.
 *
 * Expected shape: GraphABCD PR needs ~72-76% fewer iterations than
 * GraphMat; GraphABCD SSSP needs ~1.5-1.8x MORE (GraphMat's
 * active-vertex filtering shrinks its effective block size); priority
 * cuts 11-38% (PR) and 8-12% (SSSP) versus cyclic.
 */

#include "bench_common.hh"

namespace graphabcd {
namespace {

using namespace bench;

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declareInt("block-size", 512, "GraphABCD block size");
    flags.declareInt("cf-block-size", 32,
                     "CF block size (proportional to the smaller\n"
                     "                           bipartite vertex counts)");
    if (!flags.parse(argc, argv))
        return 0;

    const auto block_size =
        static_cast<VertexId>(flags.getInt("block-size"));

    Table table({"app", "graph", "GraphMat iters", "ABCD cyclic",
                 "ABCD priority", "cyclic/GraphMat",
                 "priority/cyclic"});

    auto abcd_iters = [&](auto run_fn, const BlockPartition &g,
                          Schedule sched) {
        EngineOptions opt;
        opt.blockSize = g.blockSize();
        opt.schedule = sched;
        return run_fn(g, opt, HarpConfig{}).iterations;
    };

    for (const std::string key : {"WT", "PS", "LJ", "TW"}) {
        Dataset ds = loadDataset(key, flags);
        BlockPartition g(ds.graph, block_size);

        {
            RunResult gm = graphmatPagerank(ds.graph);
            auto pr = [](const BlockPartition &gg, EngineOptions o,
                         HarpConfig c) { return abcdPagerank(gg, o, c); };
            double cyc = abcd_iters(pr, g, Schedule::Cyclic);
            double pri = abcd_iters(pr, g, Schedule::Priority);
            table.row()
                .add("PR")
                .add(key)
                .add(gm.iterations, 4)
                .add(cyc, 4)
                .add(pri, 4)
                .add(cyc / gm.iterations, 3)
                .add(pri / cyc, 3);
        }
        {
            RunResult gm = graphmatSssp(ds.graph);
            auto sp = [](const BlockPartition &gg, EngineOptions o,
                         HarpConfig c) { return abcdSssp(gg, o, c); };
            double cyc = abcd_iters(sp, g, Schedule::Cyclic);
            double pri = abcd_iters(sp, g, Schedule::Priority);
            table.row()
                .add("SSSP")
                .add(key)
                .add(gm.iterations, 4)
                .add(cyc, 4)
                .add(pri, 4)
                .add(cyc / gm.iterations, 3)
                .add(pri / cyc, 3);
        }
    }

    // CF rows: the paper reports RMSE at a fixed budget rather than
    // iteration counts; reproduce that comparison point.
    for (const std::string key : {"SAC", "MOL", "NF"}) {
        Dataset ds = loadDataset(key, flags);
        EdgeList sym = ds.graph.symmetrized();
        const auto cf_bs =
            static_cast<VertexId>(flags.getInt("cf-block-size"));
        BlockPartition g(sym, cf_bs);

        double gm_rmse = 0.0;
        RunResult gm = graphmatCf(sym, ds.graph, &gm_rmse);
        EngineOptions opt;
        opt.blockSize = cf_bs;
        opt.schedule = Schedule::Priority;
        RunResult abcd =
            abcdCf(g, opt, HarpConfig{}, gm_rmse, /*max_epochs=*/120.0);
        table.row()
            .add("CF")
            .add(key)
            .add(gm.iterations, 4)
            .add("-")
            .add(abcd.iterations, 4)
            .add("-")
            .add(abcd.iterations / gm.iterations, 3);
    }

    emitTable(table, flags);
    std::fprintf(stderr,
                 "info: paper shape: PR cyclic/GraphMat ~0.24-0.28; "
                 "SSSP cyclic/GraphMat ~1.5-1.8; priority/cyclic "
                 "~0.62-0.92.\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
