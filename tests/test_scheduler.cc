/**
 * @file
 * Tests of the block schedulers: cyclic order, Gauss-Southwell priority
 * order, random coverage, activation/deactivation bookkeeping.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/scheduler.hh"

namespace graphabcd {
namespace {

TEST(Cyclic, SweepsInIdOrder)
{
    CyclicScheduler s(4);
    for (BlockId b = 0; b < 4; b++)
        s.activate(b, 1.0);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), 1u);
    EXPECT_EQ(s.next(), 2u);
    EXPECT_EQ(s.next(), 3u);
    EXPECT_EQ(s.next(), std::nullopt);
}

TEST(Cyclic, ResumesFromCursorNotFromZero)
{
    CyclicScheduler s(4);
    s.activate(0, 1.0);
    s.activate(1, 1.0);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), 1u);
    s.activate(0, 1.0);
    s.activate(3, 1.0);
    // Cursor sits at 2, so 3 comes before the wrap-around to 0.
    EXPECT_EQ(s.next(), 3u);
    EXPECT_EQ(s.next(), 0u);
}

TEST(Cyclic, DoubleActivationIsIdempotent)
{
    CyclicScheduler s(2);
    s.activate(1, 1.0);
    s.activate(1, 1.0);
    EXPECT_EQ(s.activeCount(), 1u);
    EXPECT_EQ(s.next(), 1u);
    EXPECT_TRUE(s.empty());
}

TEST(Priority, PicksLargestGradientFirst)
{
    PriorityScheduler s(4);
    s.activate(0, 1.0);
    s.activate(1, 5.0);
    s.activate(2, 3.0);
    EXPECT_EQ(s.next(), 1u);
    EXPECT_EQ(s.next(), 2u);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_TRUE(s.empty());
}

TEST(Priority, DeltasAccumulate)
{
    PriorityScheduler s(3);
    s.activate(0, 2.0);
    s.activate(1, 3.0);
    s.activate(0, 2.0);   // 0 now has 4.0 > 3.0
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), 1u);
}

TEST(Priority, ProcessingResetsPriority)
{
    PriorityScheduler s(2);
    s.activate(0, 10.0);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_DOUBLE_EQ(s.priority(0), 0.0);
    s.activate(0, 1.0);
    s.activate(1, 2.0);
    EXPECT_EQ(s.next(), 1u);   // old 10.0 must not linger
}

TEST(Priority, StaleHeapEntriesAreSkipped)
{
    PriorityScheduler s(3);
    for (int round = 0; round < 100; round++) {
        s.activate(0, 1.0);
        s.activate(1, 0.5);
        EXPECT_EQ(s.next(), 0u);
        EXPECT_EQ(s.next(), 1u);
        EXPECT_EQ(s.next(), std::nullopt);
    }
}

TEST(Priority, ZeroDeltaActivationDoesNotChurnTheHeap)
{
    // Regression: blocks are legitimately activated with delta 0 (e.g.
    // a scatter whose values changed below tolerance elsewhere).  With
    // pushedPrio at 0 the 25% growth test `prio > pushed * 1.25`
    // degenerates, so every re-activation must still be throttled.
    PriorityScheduler s(2);
    s.activate(0, 0.0);
    const std::uint64_t pushes = s.counters().heapPushes;
    EXPECT_EQ(pushes, 1u);
    for (int i = 0; i < 1000; i++)
        s.activate(0, 0.0);
    EXPECT_EQ(s.counters().heapPushes, pushes);   // no churn
    EXPECT_EQ(s.next(), 0u);                      // still schedulable
    EXPECT_EQ(s.next(), std::nullopt);
}

TEST(Priority, NegativeDeltaIsClampedAndDoesNotChurn)
{
    // Regression: a negative delta used to drive prio below pushedPrio,
    // making the refresh condition true on every call — one heap entry
    // per activation, exactly the churn the throttle exists to stop.
    PriorityScheduler s(2);
    s.activate(0, 4.0);
    const std::uint64_t pushes = s.counters().heapPushes;
    for (int i = 0; i < 1000; i++)
        s.activate(0, -1.0);
    EXPECT_DOUBLE_EQ(s.priority(0), 4.0);   // clamped, never lowered
    EXPECT_EQ(s.counters().heapPushes, pushes);
    s.activate(1, 1.0);
    EXPECT_EQ(s.next(), 0u);   // gradient order preserved
    EXPECT_EQ(s.next(), 1u);
}

TEST(Priority, ChurnThrottleIsLogarithmicInGrowth)
{
    // 1000 unit-delta activations grow the priority to ~1001; entries
    // are refreshed only on >25% growth, so the push count must be
    // O(log_1.25 1001) ~ 31, not O(1000).
    PriorityScheduler s(1);
    s.activate(0, 1.0);
    for (int i = 0; i < 1000; i++)
        s.activate(0, 1.0);
    EXPECT_LT(s.counters().heapPushes, 40u);
    EXPECT_GT(s.counters().refreshes, 0u);
    EXPECT_EQ(s.next(), 0u);
}

TEST(Priority, CountersTrackActivationsAndStaleDiscards)
{
    PriorityScheduler s(2);
    s.activate(0, 1.0);
    s.activate(0, 2.0);   // >25% growth: refresh, old entry goes stale
    EXPECT_EQ(s.counters().activations, 2u);
    EXPECT_EQ(s.counters().heapPushes, 2u);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), std::nullopt);   // pops the stale leftover
    EXPECT_EQ(s.counters().staleDiscards, 1u);
}

TEST(Random, CoversAllActiveBlocks)
{
    RandomScheduler s(8, /*seed=*/5);
    for (BlockId b = 0; b < 8; b++)
        s.activate(b, 1.0);
    std::set<BlockId> seen;
    while (auto b = s.next())
        seen.insert(*b);
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, DeterministicPerSeed)
{
    RandomScheduler a(16, 7), b(16, 7);
    for (BlockId i = 0; i < 16; i++) {
        a.activate(i, 1.0);
        b.activate(i, 1.0);
    }
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, ActivationIdempotent)
{
    RandomScheduler s(4, 1);
    s.activate(2, 1.0);
    s.activate(2, 1.0);
    EXPECT_EQ(s.activeCount(), 1u);
}

TEST(Factory, BuildsTheRequestedKind)
{
    EXPECT_EQ(makeScheduler(Schedule::Cyclic, 4, 1)->kind(),
              Schedule::Cyclic);
    EXPECT_EQ(makeScheduler(Schedule::Priority, 4, 1)->kind(),
              Schedule::Priority);
    EXPECT_EQ(makeScheduler(Schedule::Random, 4, 1)->kind(),
              Schedule::Random);
}

TEST(Factory, NamesRoundTrip)
{
    EXPECT_STREQ(to_string(Schedule::Cyclic), "cyclic");
    EXPECT_STREQ(to_string(Schedule::Priority), "priority");
    EXPECT_STREQ(to_string(ExecMode::Async), "async");
    EXPECT_STREQ(to_string(ExecMode::Bsp), "bsp");
}

} // namespace
} // namespace graphabcd
