/**
 * @file
 * Discrete-event kernel of the HARP simulator: a time-ordered queue of
 * thunks with deterministic FIFO tie-breaking.
 */

#ifndef GRAPHABCD_HARP_EVENT_QUEUE_HH
#define GRAPHABCD_HARP_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "support/logging.hh"

namespace graphabcd {

/**
 * Min-heap of (time, seq) ordered events.  Events scheduled at equal
 * times fire in scheduling order, which keeps runs deterministic.
 */
class EventQueue
{
  public:
    using Thunk = std::function<void()>;

    /** Schedule `fn` at absolute time `when` (>= current time). */
    void
    schedule(double when, Thunk fn)
    {
        GRAPHABCD_ASSERT(when + 1e-15 >= now_,
                         "event scheduled in the past");
        heap.push(Event{when, seq++, std::move(fn)});
    }

    /** @return whether any event is pending. */
    bool empty() const { return heap.empty(); }

    /** @return current simulated time (last popped event time). */
    double now() const { return now_; }

    /** Pop and run the earliest event, advancing now(). */
    void
    runNext()
    {
        GRAPHABCD_ASSERT(!heap.empty(), "runNext on an empty queue");
        // std::priority_queue::top is const; the thunk must be moved out
        // via const_cast, which is safe because pop() follows at once.
        auto &top = const_cast<Event &>(heap.top());
        now_ = top.when;
        Thunk fn = std::move(top.fn);
        heap.pop();
        fn();
    }

    /** Run until no events remain.  @return final simulated time. */
    double
    runToCompletion()
    {
        while (!heap.empty())
            runNext();
        return now_;
    }

  private:
    struct Event
    {
        double when;
        std::uint64_t seq;
        Thunk fn;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
    std::uint64_t seq = 0;
    double now_ = 0.0;
};

} // namespace graphabcd

#endif // GRAPHABCD_HARP_EVENT_QUEUE_HH
