# Empty dependencies file for abcd_runtime.
# This may be replaced when dependencies are built.
