/**
 * @file
 * Plain-text edge-list I/O (the format the paper's prototype consumes).
 *
 * Format: one "src dst [weight]" triple per line; '#' or '%' start
 * comment lines (SNAP and Matrix Market headers respectively).  Vertex
 * ids may be sparse in the file; loadEdgeList() densifies them.
 */

#ifndef GRAPHABCD_GRAPH_IO_HH
#define GRAPHABCD_GRAPH_IO_HH

#include <string>

#include "graph/edge_list.hh"

namespace graphabcd {

/**
 * Load a whitespace-separated edge list.
 * @param path input file.
 * @param densify remap sparse ids to [0, n); when false the max id + 1
 *        becomes the vertex count.
 * @throws FatalError on missing/garbled files.
 */
EdgeList loadEdgeList(const std::string &path, bool densify = true);

/** Write "src dst weight" lines (weight omitted when uniformly 1). */
void saveEdgeList(const EdgeList &el, const std::string &path);

/**
 * Write the compact binary format: magic "ABCD", format version,
 * vertex count, edge count, then raw (src, dst, weight) records.
 * Roughly 5x smaller and 20x faster to load than the text format.
 */
void saveEdgeListBinary(const EdgeList &el, const std::string &path);

/** Load the binary format; fatal() on bad magic/version/truncation. */
EdgeList loadEdgeListBinary(const std::string &path);

/**
 * Write the packed binary format: magic "ABCZ", format version, vertex
 * count, edge count, weight-mode byte, then per-vertex varint degree +
 * delta-varint sorted out-neighbor lists, then the weight sidecar (one
 * byte per edge for small integral weights, f32 per edge otherwise,
 * nothing when every weight is 1).  Typically 3-6x smaller than the
 * "ABCD" raw-record format on sorted social graphs.
 */
void saveEdgeListPacked(const EdgeList &el, const std::string &path);

/**
 * Load the packed format.  Every varint is decoded through the checked
 * codec path: truncated, overlong or overflowing encodings, degree
 * sums disagreeing with the header edge count, and out-of-range
 * neighbor ids all fatal() with the path and byte offset — a corrupt
 * stream can never over-read or OOM.
 */
EdgeList loadEdgeListPacked(const std::string &path);

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_IO_HH
