/**
 * @file
 * Route-planning scenario: single-source shortest paths on a weighted
 * grid road network, run on the threaded asynchronous engine and
 * cross-checked against Dijkstra.  Demonstrates the label-correcting
 * SSSP vertex program, quiescence-based termination and route
 * reconstruction from the distance field.
 *
 * Usage: ./build/examples/route_planner [--rows N] [--cols N]
 */

#include <cstdio>
#include <vector>

#include "algorithms/reference.hh"
#include "algorithms/sssp.hh"
#include "core/async_engine.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "support/flags.hh"

using namespace graphabcd;

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declareInt("rows", 200, "grid rows");
    flags.declareInt("cols", 200, "grid columns");
    flags.declareInt("threads", 4, "worker threads");
    flags.declareInt("seed", 7, "road-weight seed");
    if (!flags.parse(argc, argv))
        return 0;

    const auto rows = static_cast<VertexId>(flags.getInt("rows"));
    const auto cols = static_cast<VertexId>(flags.getInt("cols"));
    Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
    EdgeList roads = generateGrid2d(rows, cols, rng, /*weighted=*/true);
    std::printf("road network: %u intersections, %llu segments\n",
                roads.numVertices(),
                static_cast<unsigned long long>(roads.numEdges()));

    const VertexId source = 0;                      // top-left corner
    const VertexId target = rows * cols - 1;        // bottom-right

    BlockPartition g(roads, /*block_size=*/256);
    EngineOptions opt;
    opt.blockSize = 256;
    opt.numThreads =
        static_cast<std::uint32_t>(flags.getInt("threads"));
    opt.tolerance = 1e-9;

    AsyncEngine<SsspProgram> engine(g, SsspProgram(source), opt);
    std::vector<double> dist;
    EngineReport report = engine.run(dist);
    std::printf("solved in %.2f epochs, %.1f ms wall (%s)\n",
                report.epochs, report.seconds * 1e3,
                report.converged ? "quiescent" : "epoch cap");

    std::vector<double> ref = dijkstraReference(roads, source);
    double max_err = 0.0;
    for (VertexId v = 0; v < roads.numVertices(); v++)
        max_err = std::max(max_err, std::abs(dist[v] - ref[v]));
    std::printf("max deviation from Dijkstra: %.2e\n", max_err);

    // Walk the route backwards: repeatedly hop to the in-neighbor that
    // satisfies dist[u] + w(u,v) == dist[v].
    std::vector<VertexId> route{target};
    VertexId at = target;
    while (at != source && route.size() < g.numVertices()) {
        VertexId next_hop = invalidVertex;
        for (EdgeId e = g.inEdgeBegin(at); e < g.inEdgeEnd(at); e++) {
            VertexId u = g.edgeSrc(e);
            if (std::abs(dist[u] + g.edgeWeight(e) - dist[at]) < 1e-9) {
                next_hop = u;
                break;
            }
        }
        if (next_hop == invalidVertex)
            break;
        at = next_hop;
        route.push_back(at);
    }
    std::printf("route %u -> %u: cost %.1f, %zu hops "
                "(grid diagonal is %u)\n",
                source, target, dist[target], route.size() - 1,
                rows + cols - 2);
    return 0;
}
