/**
 * @file
 * Configuration of the HARPv2 system simulator.
 *
 * Defaults reproduce the paper's prototype (Sec. V-A): 16 FPGA PEs at
 * 200 MHz, 14 CPU threads, 12.8 GB/s CPU-FPGA bandwidth (two PCIe x8 +
 * one QPI into the CPU LLC), 58 GB/s host DRAM bandwidth.
 */

#ifndef GRAPHABCD_HARP_CONFIG_HH
#define GRAPHABCD_HARP_CONFIG_HH

#include <cstdint>
#include <vector>

#include "core/options.hh"
#include "support/units.hh"

namespace graphabcd {

/**
 * One accelerator device of a heterogeneous deployment: its PE count,
 * clock, per-PE rate and the bandwidth of its own link to the host.
 */
struct AcceleratorSpec
{
    std::uint32_t numPes = 16;
    double clockHz = 200e6;
    double edgesPerCycle = 0.5;
    double busBandwidth = 12.8e9;

    /** Seconds this device's PE needs to compute `edges`. */
    double
    computeSeconds(std::uint64_t edges, double pipeline_depth) const
    {
        return (static_cast<double>(edges) / edgesPerCycle +
                pipeline_depth) /
               clockHz;
    }
};

/** Structural and timing parameters of the simulated platform. */
struct HarpConfig
{
    // ------------------------------------------------- accelerator side
    /**
     * Number of accelerator devices.  The prototype has one FPGA; the
     * paper argues the barrierless design lets GraphABCD "scale out to
     * heterogeneous and distributed accelerators" — setting this above
     * 1 models that: each accelerator gets its own `numPes` PEs and its
     * own CPU link of `busBandwidth`, all fed from the one scheduler.
     */
    std::uint32_t numAccelerators = 1;
    std::uint32_t numPes = 16;          //!< gather-apply PEs per device
    double fpgaClockHz = 200e6;         //!< prototype clock

    /**
     * Explicit device list for *heterogeneous* deployments (e.g. one
     * FPGA plus a weaker embedded accelerator).  When non-empty it
     * overrides numAccelerators/numPes/fpgaClockHz/busBandwidth; the
     * uniform knobs above remain the convenient homogeneous path.
     */
    std::vector<AcceleratorSpec> accelerators;

    /** @return the realised device list (explicit or uniform). */
    std::vector<AcceleratorSpec>
    deviceList() const
    {
        if (!accelerators.empty())
            return accelerators;
        std::vector<AcceleratorSpec> out(numAccelerators);
        for (AcceleratorSpec &spec : out) {
            spec.numPes = numPes;
            spec.clockHz = fpgaClockHz;
            spec.edgesPerCycle = peEdgesPerCycle;
            spec.busBandwidth = busBandwidth;
        }
        return out;
    }
    double peEdgesPerCycle = 0.5;       //!< sustained edges/cycle per PE
    double pePipelineDepth = 24.0;      //!< drain cycles per block task

    /**
     * Home blocks onto accelerators with the fragment partitioning
     * (FragmentTopology cut into one fragment per device — the same
     * cut the software FragmentEngine uses): an idle PE prefers a
     * queued block its own device's fragment owns and falls back to
     * the queue head otherwise, so affinity never starves a device.
     * Off by default; bench/scaleout enables it for the
     * multi-accelerator grid.  No effect with a single device.
     */
    bool fragmentAffinity = false;

    // -------------------------------------------------------- CPU side
    std::uint32_t cpuThreads = 14;      //!< SCATTER / scheduler threads
    double cpuThreadBytesPerSec = 2.5e9; //!< per-thread DRAM share
    double scatterRandomPenalty = 2.0;  //!< random-write amplification
    double scatterOverheadSec = 2e-7;   //!< task pickup + active-list

    // -------------------------------------------------- interconnect
    double busBandwidth = 12.8 * GB;    //!< CPU LLC <-> FPGA
    double dispatchLatencySec = 300e-9; //!< queue doorbell over PCIe
    double dmaLatencySec = 300e-9;      //!< DMA setup per transfer

    // ------------------------------------------------------- queues
    std::uint32_t accelQueueDepth = 32; //!< bounds staleness
    std::uint32_t cpuQueueDepth = 32;

    // ----------------------------------------------------- execution
    bool hybrid = false;                //!< CPU-side GATHER-APPLY
    double cpuGatherEdgesPerSec = 30e6; //!< per CPU gather worker
    double barrierSeconds = 5e-6;       //!< per global barrier (BSP)

    // ------------------------------------- structural (Table IV) data
    std::uint32_t peInputBufBytes = 16 * 1024;
    std::uint32_t peOutputBufBytes = 8 * 1024;
    std::uint32_t scratchpadBytes = 64 * 1024;  //!< reduction tag store

    // ------------------------------------------------- graph layout
    /**
     * Topology bytes streamed per edge (src id + weight).  8.0 is the
     * plain CSC record; serve sets it from the partition's measured
     * BlockPartition::gatherBytesPerEdge() so the simulated DMA traffic
     * tracks the real layout (compressed layouts land well under 8).
     */
    double layoutBytesPerEdge = 8.0;

    /** Bytes of one streamed edge record: topology + value. */
    double
    edgeRecordBytes(std::uint32_t value_bytes) const
    {
        return layoutBytesPerEdge + value_bytes;
    }

    /** Seconds a PE needs to compute `edges` (reduction-pipeline rate). */
    double
    peComputeSeconds(std::uint64_t edges) const
    {
        return (static_cast<double>(edges) / peEdgesPerCycle +
                pePipelineDepth) /
               fpgaClockHz;
    }
};

} // namespace graphabcd

#endif // GRAPHABCD_HARP_CONFIG_HH
