#include "harp/graphicionado.hh"

#include <algorithm>

namespace graphabcd {

GraphicionadoReport
graphicionadoTime(const graphmat::GraphMatReport &run,
                  VertexId num_vertices, std::uint32_t value_bytes,
                  const GraphicionadoConfig &cfg)
{
    GraphicionadoReport out;
    out.iterations = run.iterations;

    // Per-edge DRAM traffic: streamed edge record plus the vertex
    // read-modify-write share that misses the on-chip scratchpad.
    const double bytes_per_edge =
        cfg.edgeBytes + cfg.vertexBytesPerEdge +
        0.25 * static_cast<double>(value_bytes);
    const double traffic =
        static_cast<double>(run.edgesProcessed) * bytes_per_edge +
        static_cast<double>(run.iterations) * num_vertices *
            value_bytes;

    const double bw_time = traffic / (cfg.bandwidth * cfg.efficiency);
    const double pipe_time = static_cast<double>(run.edgesProcessed) /
                             (cfg.streamsPerCycle * cfg.clockHz);
    out.seconds = std::max(bw_time, pipe_time) +
                  run.iterations * cfg.barrierSeconds;
    if (out.seconds > 0.0) {
        out.mtes = static_cast<double>(run.edgesProcessed) /
                   out.seconds / 1e6;
    }
    return out;
}

} // namespace graphabcd
