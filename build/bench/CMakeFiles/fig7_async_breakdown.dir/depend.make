# Empty dependencies file for fig7_async_breakdown.
# This may be replaced when dependencies are built.
