/**
 * @file
 * Reproduces paper Table IV (FPGA resource utilization) in the only
 * form meaningful for a simulator: the structural parameters of the
 * emulated accelerator per algorithm — PE count, buffer and scratchpad
 * sizes, queue depths and value widths — next to the paper's reported
 * Arria 10 consumption for context.
 */

#include "bench_common.hh"

namespace graphabcd {
namespace {

using namespace bench;

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    HarpConfig cfg;

    Table table({"app", "value bytes", "PEs", "clock (MHz)",
                 "input buf/PE", "output buf/PE", "scratchpad/PE",
                 "task queue depth", "total accel SRAM",
                 "paper BRAM (all PEs)"});

    struct AppRow
    {
        const char *app;
        std::uint32_t valueBytes;
        const char *paperBram;
    };
    // The paper reports 2.69 MB FPGA BRAM total and per-app ALM/BRAM
    // variation across PR/SSSP/CF bitstreams (Table IV).
    const AppRow apps[] = {
        {"PR", 8, "~2.7 MB"},
        {"SSSP", 8, "~2.7 MB"},
        {"CF (H=16)", 4 * kCfDim, "~2.7 MB"},
    };

    for (const AppRow &app : apps) {
        const std::uint64_t sram_per_pe = cfg.peInputBufBytes +
                                          cfg.peOutputBufBytes +
                                          cfg.scratchpadBytes;
        table.row()
            .add(app.app)
            .add(static_cast<std::uint64_t>(app.valueBytes))
            .add(static_cast<std::uint64_t>(cfg.numPes))
            .add(cfg.fpgaClockHz / 1e6, 4)
            .add(formatBytes(cfg.peInputBufBytes))
            .add(formatBytes(cfg.peOutputBufBytes))
            .add(formatBytes(cfg.scratchpadBytes))
            .add(static_cast<std::uint64_t>(cfg.accelQueueDepth))
            .add(formatBytes(static_cast<double>(sram_per_pe) *
                             cfg.numPes))
            .add(app.paperBram);
    }

    emitTable(table, flags);
    std::fprintf(stderr,
                 "info: the paper's prototype used 2.69 MB BRAM + 35 MB "
                 "CPU LLC; Graphicionado needs 64-256 MB eDRAM — the "
                 "pull-push layout is what keeps on-chip state small.\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
