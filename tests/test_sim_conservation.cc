/**
 * @file
 * Conservation properties of the HARP simulator: the timing layer must
 * account for exactly the work the functional layer performed — bytes,
 * tasks and epochs all reconcile, and the simulated clock can never be
 * beaten by the aggregate bandwidth bound.
 */

#include <gtest/gtest.h>

#include "algorithms/pagerank.hh"
#include "algorithms/sssp.hh"
#include "graph/generators.hh"
#include "harp/system.hh"

namespace graphabcd {
namespace {

class SimConservation : public testing::TestWithParam<std::uint64_t>
{
  protected:
    SimReport
    run(const BlockPartition &g, HarpConfig cfg,
        std::uint32_t block_size)
    {
        EngineOptions opt;
        opt.blockSize = block_size;
        opt.tolerance = 1e-9;
        HarpSystem<PageRankProgram> sys(g, PageRankProgram(0.85), opt,
                                        cfg);
        std::vector<double> x;
        return sys.run(x);
    }
};

TEST_P(SimConservation, BusBytesMatchProcessedBlocks)
{
    Rng rng(GetParam());
    EdgeList el = generateRmat(1024, 8192, rng);
    BlockPartition g(el, 64);
    HarpConfig cfg;
    SimReport r = run(g, cfg, 64);

    // Every FPGA task streams edge records + vertex block in, vertex
    // block out; hybrid is off so all blockUpdates are FPGA tasks.
    const std::uint64_t vbytes = sizeof(double);
    const std::uint64_t rec = cfg.edgeRecordBytes(vbytes);
    std::uint64_t expected_read = 0, expected_write = 0;
    // Reconstruct from the report: reads = edges*rec + vertices*vbytes
    // summed per task.  Edge traversals and vertex updates are exactly
    // those sums' drivers.
    expected_read = r.edgeTraversals * rec + r.vertexUpdates * vbytes;
    expected_write = r.vertexUpdates * vbytes;
    EXPECT_EQ(r.busReadBytes, expected_read);
    EXPECT_EQ(r.busWriteBytes, expected_write);
    EXPECT_EQ(r.fpgaTasks, r.blockUpdates);
}

TEST_P(SimConservation, TimeRespectsTheBandwidthBound)
{
    Rng rng(GetParam() ^ 0xBEEF);
    EdgeList el = generateRmat(2048, 16384, rng);
    BlockPartition g(el, 64);
    HarpConfig cfg;
    SimReport r = run(g, cfg, 64);
    // All traffic crossed one 12.8 GB/s link: simulated time can never
    // undercut bytes / bandwidth.
    const double floor_seconds =
        static_cast<double>(r.busReadBytes + r.busWriteBytes) /
        cfg.busBandwidth;
    EXPECT_GE(r.seconds, floor_seconds * (1.0 - 1e-9));
}

TEST_P(SimConservation, UtilizationsAreConsistentFractions)
{
    Rng rng(GetParam() ^ 0xCAFE);
    EdgeList el = generateRmat(1024, 8192, rng);
    BlockPartition g(el, 32);
    HarpConfig cfg;
    cfg.hybrid = GetParam() % 2 == 0;
    SimReport r = run(g, cfg, 32);
    EXPECT_GE(r.peUtilization, 0.0);
    EXPECT_LE(r.peUtilization, 1.0 + 1e-9);
    EXPECT_GE(r.busUtilization, 0.0);
    EXPECT_LE(r.busUtilization, 1.0 + 1e-9);
    EXPECT_GE(r.cpuUtilization, 0.0);
    EXPECT_LE(r.cpuUtilization, 1.0 + 1e-9);
    EXPECT_EQ(r.fpgaTasks + r.cpuGatherTasks, r.blockUpdates);
}

TEST_P(SimConservation, HybridMovesTrafficOffTheBus)
{
    Rng rng(GetParam() ^ 0xF00D);
    EdgeList el = generateRmat(4096, 32768, rng);
    BlockPartition g(el, 32);
    HarpConfig plain, hybrid;
    plain.numPes = 2;   // starved: hybrid will take work
    hybrid.numPes = 2;
    hybrid.hybrid = true;
    SimReport a = run(g, plain, 32);
    SimReport b = run(g, hybrid, 32);
    if (b.cpuGatherTasks > 0) {
        // Bus bytes per block update must be lower with hybrid on.
        double per_a = static_cast<double>(a.busReadBytes) /
                       a.blockUpdates;
        double per_b = static_cast<double>(b.busReadBytes) /
                       b.blockUpdates;
        EXPECT_LT(per_b, per_a);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimConservation,
                         testing::Values(7, 11, 13, 17));

} // namespace
} // namespace graphabcd
