/**
 * @file
 * Destination-sliced block partition — GraphABCD's on-device layout.
 *
 * Per the paper (Fig. 1 and Sec. IV-A2): the vertex array is cut into
 * contiguous blocks (intervals) of `blockSize` vertices, and the adjacency
 * matrix is sliced into chunks by *destination* vertex.  In-coming edges of
 * the same vertex are contiguous in memory, so a PE streaming one block's
 * edge slice performs only sequential reads.  Out-going edge positions are
 * kept in a separate scatter index: SCATTER writes each updated vertex
 * value into those (random) positions.
 *
 * There is exactly one copy of the edges (paper footnote 4): the in-edge
 * CSC arrays.  The scatter index stores positions *into* those arrays.
 */

#ifndef GRAPHABCD_GRAPH_PARTITION_HH
#define GRAPHABCD_GRAPH_PARTITION_HH

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hh"
#include "graph/types.hh"

namespace graphabcd {

/**
 * The blocked graph.  Immutable after construction; the mutable
 * edge-carried vertex values live in core::EdgeValues, parallel to the
 * edge arrays here.
 */
class BlockPartition
{
  public:
    BlockPartition() = default;

    /**
     * Build the partition with fixed vertex-count blocks.
     * @param el input edge list.
     * @param block_size vertices per block; |V| (or more) degenerates to
     *        a single block, i.e. full gradient descent / BSP.
     */
    BlockPartition(const EdgeList &el, VertexId block_size);

    /** Tag selecting the edge-balanced builder. */
    struct EdgeBalanced
    {
    };

    /**
     * Build the partition with *edge-balanced* blocks: contiguous
     * vertex ranges cut so each block's in-edge slice holds roughly
     * `target_edges_per_block` edges.  This evens out PE service times
     * on skewed graphs (the load-imbalance concern of Sec. IV-A3) at
     * the cost of variable block vertex counts.
     */
    BlockPartition(const EdgeList &el, EdgeId target_edges_per_block,
                   EdgeBalanced);

    VertexId numVertices() const { return nVertices; }
    EdgeId numEdges() const { return static_cast<EdgeId>(edgeSrc_.size()); }

    /**
     * @return nominal vertices per block (the constructor argument for
     * fixed-size partitions; the mean block size for edge-balanced
     * ones).
     */
    VertexId blockSize() const { return blockSize_; }

    BlockId numBlocks() const { return nBlocks; }

    /** @return the block containing vertex v. */
    BlockId blockOf(VertexId v) const { return vertexBlock[v]; }

    /** @return first vertex of block b. */
    VertexId blockBegin(BlockId b) const { return blockBegins[b]; }

    /** @return one-past-last vertex of block b. */
    VertexId blockEnd(BlockId b) const { return blockBegins[b + 1]; }

    /** @return number of vertices in block b. */
    VertexId
    blockVertexCount(BlockId b) const
    {
        return blockEnd(b) - blockBegin(b);
    }

    /** @return index of the first in-edge of block b's edge slice. */
    EdgeId edgeBegin(BlockId b) const { return inOffsets[blockBegin(b)]; }

    /** @return one-past-last in-edge of block b's edge slice. */
    EdgeId edgeEnd(BlockId b) const { return inOffsets[blockEnd(b)]; }

    /** @return number of in-edges landing in block b. */
    EdgeId
    blockEdgeCount(BlockId b) const
    {
        return edgeEnd(b) - edgeBegin(b);
    }

    /** @return [begin, end) in-edge indices of vertex v. */
    EdgeId inEdgeBegin(VertexId v) const { return inOffsets[v]; }
    EdgeId inEdgeEnd(VertexId v) const { return inOffsets[v + 1]; }

    /** @return source vertex of in-edge position e (CSC order). */
    VertexId edgeSrc(EdgeId e) const { return edgeSrc_[e]; }

    /** @return destination vertex of in-edge position e. */
    VertexId edgeDst(EdgeId e) const { return edgeDst_[e]; }

    /** @return weight of in-edge position e. */
    float edgeWeight(EdgeId e) const { return edgeWeight_[e]; }

    /** @return positions (into the in-edge arrays) of v's out-edges. */
    std::span<const EdgeId>
    scatterPositions(VertexId v) const
    {
        return {scatterPos.data() + scatterOffsets[v],
                scatterPos.data() + scatterOffsets[v + 1]};
    }

    /** @return out-degree of v. */
    std::uint32_t
    outDegree(VertexId v) const
    {
        return static_cast<std::uint32_t>(scatterOffsets[v + 1] -
                                          scatterOffsets[v]);
    }

    /** @return in-degree of v. */
    std::uint32_t
    inDegree(VertexId v) const
    {
        return static_cast<std::uint32_t>(inOffsets[v + 1] - inOffsets[v]);
    }

    /**
     * Set of destination blocks reachable from block b in one hop, i.e.
     * the blocks whose edge slices contain an edge sourced in b.  Used by
     * SCATTER to activate downstream blocks.
     */
    std::span<const BlockId>
    downstreamBlocks(BlockId b) const
    {
        return {downstream.data() + downstreamOffsets[b],
                downstream.data() + downstreamOffsets[b + 1]};
    }

    /**
     * Bytes a PE streams to process block b: the edge slice (src id +
     * weight + one edge-carried value of `value_bytes`) plus reading and
     * writing the vertex value block.  Drives the simulator's DMA sizes.
     */
    std::uint64_t
    blockStreamBytes(BlockId b, std::uint32_t value_bytes) const
    {
        const std::uint64_t edge_rec =
            sizeof(VertexId) + sizeof(float) + value_bytes;
        return blockEdgeCount(b) * edge_rec +
               2ULL * blockVertexCount(b) * value_bytes;
    }

  private:
    /** Shared tail of both constructors: CSC, scatter, downstream. */
    void buildFromBoundaries(const EdgeList &el);

    VertexId nVertices = 0;
    VertexId blockSize_ = 0;
    BlockId nBlocks = 0;

    std::vector<VertexId> blockBegins;  //!< size numBlocks+1
    std::vector<BlockId> vertexBlock;   //!< size V, vertex -> block

    std::vector<EdgeId> inOffsets;        //!< size V+1, CSC row offsets
    std::vector<VertexId> edgeSrc_;       //!< size E, CSC order
    std::vector<VertexId> edgeDst_;       //!< size E, CSC order
    std::vector<float> edgeWeight_;       //!< size E

    std::vector<EdgeId> scatterOffsets;   //!< size V+1
    std::vector<EdgeId> scatterPos;       //!< size E, positions into CSC

    std::vector<EdgeId> downstreamOffsets; //!< size numBlocks+1
    std::vector<BlockId> downstream;       //!< concatenated block sets
};

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_PARTITION_HH
