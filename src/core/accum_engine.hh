/**
 * @file
 * Accumulative (delta) BCD engine — Maiter-style delta propagation made
 * safe under barrierless execution (ROADMAP item 1).
 *
 * The paper rejects operation-based updates because the per-edge
 * pending arrays of PageRank-Delta put a read-modify-write window
 * between GATHER's consume and SCATTER's accumulate (Sec. IV-A3; the
 * anomaly is reproduced by src/core/delta_state.hh).  Maiter's insight
 * is that the window is an artifact of the *layout*, not of delta
 * propagation itself: give every vertex ONE atomic pending accumulator,
 * make SCATTER a single atomic accumulate (fetch-add for PageRank, CAS
 * min for path problems) and GATHER a single exchange-to-zero, and
 * every delta is either in the accumulator or in exactly one
 * extractor's hands — nothing can be overwritten or double-counted, no
 * locks, no barriers.  Commutative + associative accumulation is the
 * whole correctness argument.
 *
 * Conservation: a delta whose application would move the value by less
 * than the tolerance is not dropped (the bug this engine exists to
 * kill) but folded back into the vertex's accumulator, so value mass is
 * conserved *by construction*: for PageRank,
 * sum(values) + sum(pending)/(1-alpha) == 1 holds at every instant and
 * the fixpoint drops rank mass only through the per-vertex tolerance,
 * never through lost residuals.
 *
 * Scheduling: deltas make the Gauss-Southwell rule natural — a block's
 * priority tracks the estimated value moves of the deltas accumulated
 * into it since its last processing, maintained by the scatter hook.
 * The hook applies Maiter's activation filter: a destination is woken
 * only when its whole accumulated pending would move its value by more
 * than the tolerance, so sub-tolerance traffic parks in the
 * accumulator (conserved) instead of churning the worklist.  With
 * Schedule::Obim the
 * engine pushes activations concurrently from inside SCATTER (the
 * scheduler's concurrentPush() contract); with the serialized
 * schedulers it batches activations per block under the control lock,
 * exactly like AsyncEngine.
 *
 * Threading mirrors AsyncEngine: no threads are spawned; the engine
 * opens an Executor::Job with participation numThreads and the calling
 * thread pumps blocks alongside pool workers.  StopToken and the
 * maxEpochs budget halt the run without ever claiming convergence
 * while work remains.
 */

#ifndef GRAPHABCD_CORE_ACCUM_ENGINE_HH
#define GRAPHABCD_CORE_ACCUM_ENGINE_HH

#include <algorithm>
#include <atomic>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/engine.hh"
#include "core/options.hh"
#include "core/scheduler.hh"
#include "graph/partition.hh"
#include "obs/obs.hh"
#include "runtime/executor.hh"
#include "support/timer.hh"

namespace graphabcd {

/**
 * Contract of an accumulative vertex program.  combineDelta must be
 * commutative and associative (sum, min, ...) — that is what makes
 * concurrent scatter safe — and apply/propagate must be monotone in
 * the Maiter sense: applying deltas in any order reaches the same
 * fixpoint.
 */
template <typename P>
concept AccumulativeProgram =
    requires(const P p, typename P::Value v, VertexId vid, EdgeId e,
             const BlockPartition &g) {
        typename P::Value;
        /** Initial vertex value (before any delta lands). */
        { p.init(vid, g) } -> std::convertible_to<typename P::Value>;
        /** Initial accumulator content (the seed work). */
        { p.initialDelta(vid, g) }
            -> std::convertible_to<typename P::Value>;
        /** Neutral element of combineDelta; an accumulator holding it
         *  has no work. */
        { p.identityDelta() }
            -> std::convertible_to<typename P::Value>;
        /** Merge two deltas (commutative + associative). */
        { p.combineDelta(v, v) }
            -> std::convertible_to<typename P::Value>;
        /** New vertex value after absorbing a delta. */
        { p.apply(v, v) } -> std::convertible_to<typename P::Value>;
        /** Delta shipped along out-edge at CSC position e when the
         *  vertex moved to `next` by absorbing `applied`. */
        { p.propagate(vid, v, v, e, g) }
            -> std::convertible_to<typename P::Value>;
        /** Part of an extracted delta still worth keeping when its
         *  application moved the value by <= tolerance (identityDelta
         *  to keep nothing). */
        { p.foldResidual(v, v) }
            -> std::convertible_to<typename P::Value>;
        /** Scalar size of a value move (activation priority). */
        { p.magnitude(v, v) } -> std::convertible_to<double>;
    };

/**
 * Accumulative PageRank (Maiter Sec. 2's canonical example): values
 * start at 0, accumulators at (1-alpha)/N, and a vertex that absorbs
 * delta d ships alpha*d/outdeg to each out-neighbour.  The fixpoint is
 * exactly PageRank's: x = (1-alpha)/N + alpha * sum(x_u / deg_u).
 * Every delta is non-negative, so accumulation is monotone and
 * sum(values) + sum(pending)/(1-alpha) == 1 is invariant (on graphs
 * without dangling vertices; a dangling vertex drains its alpha-share,
 * matching the non-accumulative engines' semantics).
 */
struct PageRankAccumProgram
{
    using Value = double;

    double alpha = 0.85;

    explicit PageRankAccumProgram(double damping = 0.85)
        : alpha(damping)
    {
    }

    Value init(VertexId, const BlockPartition &) const { return 0.0; }

    Value
    initialDelta(VertexId, const BlockPartition &g) const
    {
        return (1.0 - alpha) / std::max<double>(g.numVertices(), 1.0);
    }

    Value identityDelta() const { return 0.0; }
    Value combineDelta(Value a, Value b) const { return a + b; }
    Value apply(Value old, Value d) const { return old + d; }

    Value
    propagate(VertexId v, Value, Value applied, EdgeId,
              const BlockPartition &g) const
    {
        const std::uint32_t deg = g.outDegree(v);
        return deg ? alpha * applied / deg : 0.0;
    }

    /** Keep the whole residual: this is the mass-conservation fix. */
    Value foldResidual(Value d, Value) const { return d; }

    double magnitude(Value old, Value next) const
    {
        return std::abs(next - old);
    }
};

/**
 * Accumulative SSSP: min-accumulation of tentative distances.
 * Absorbing a shorter distance ships next+w along each out-edge — the
 * asynchronous label-correcting form (Maiter Sec. 2.2).
 */
struct SsspAccumProgram
{
    using Value = double;

    VertexId source = 0;
    static constexpr Value unreachable = 1e18;

    explicit SsspAccumProgram(VertexId src = 0) : source(src) {}

    Value init(VertexId, const BlockPartition &) const
    {
        return unreachable;
    }

    Value
    initialDelta(VertexId v, const BlockPartition &) const
    {
        return v == source ? 0.0 : unreachable;
    }

    Value identityDelta() const { return unreachable; }
    Value combineDelta(Value a, Value b) const { return std::min(a, b); }
    Value apply(Value old, Value d) const { return std::min(old, d); }

    Value
    propagate(VertexId, Value next, Value, EdgeId e,
              const BlockPartition &g) const
    {
        return next + g.edgeWeight(e);
    }

    /** A candidate that no longer improves the value is dead. */
    Value
    foldResidual(Value d, Value old) const
    {
        return d < old ? d : unreachable;
    }

    double magnitude(Value old, Value next) const
    {
        return std::abs(old - next);
    }
};

/** Accumulative BFS: SSSP with unit hop cost. */
struct BfsAccumProgram : SsspAccumProgram
{
    explicit BfsAccumProgram(VertexId src = 0) : SsspAccumProgram(src) {}

    Value
    propagate(VertexId, Value next, Value, EdgeId,
              const BlockPartition &) const
    {
        return next + 1.0;
    }
};

/**
 * Accumulative connected components: min-label accumulation.  Every
 * vertex seeds its own id as a candidate label; absorbing a smaller
 * label re-ships it unchanged.  On a symmetrized graph the fixpoint
 * labels every vertex with its component's minimum id (ccReference).
 */
struct CcAccumProgram
{
    using Value = double;

    static constexpr Value unlabeled = 1e18;

    Value init(VertexId, const BlockPartition &) const
    {
        return unlabeled;
    }

    Value
    initialDelta(VertexId v, const BlockPartition &) const
    {
        return static_cast<Value>(v);
    }

    Value identityDelta() const { return unlabeled; }
    Value combineDelta(Value a, Value b) const { return std::min(a, b); }
    Value apply(Value old, Value d) const { return std::min(old, d); }

    Value
    propagate(VertexId, Value next, Value, EdgeId,
              const BlockPartition &) const
    {
        return next;
    }

    Value
    foldResidual(Value d, Value old) const
    {
        return d < old ? d : unlabeled;
    }

    double magnitude(Value old, Value next) const
    {
        return std::abs(old - next);
    }
};

/** What processVertex did with a vertex's accumulator. */
enum class AccumOutcome
{
    Idle,     //!< accumulator held the identity: no work
    Folded,   //!< sub-tolerance move: residual folded back, no scatter
    Applied,  //!< value moved; deltas scattered downstream
};

/**
 * The accumulative data plane: one atomic value + one atomic pending
 * accumulator per vertex.  Exposed separately from the engine so tests
 * can drive adversarial interleavings directly (the analogue of
 * DeltaState's split gather/commit API) and audit conservation.
 */
template <AccumulativeProgram Program>
class AccumState
{
  public:
    using Value = typename Program::Value;

    static_assert(std::atomic<Value>::is_always_lock_free,
                  "AccumState needs a lock-free atomic Value");

    AccumState(const BlockPartition &g, const Program &p) : graph(g)
    {
        const VertexId n = g.numVertices();
        values_ = std::vector<std::atomic<Value>>(n);
        pending_ = std::vector<std::atomic<Value>>(n);
        for (VertexId v = 0; v < n; v++) {
            values_[v].store(p.init(v, g), std::memory_order_relaxed);
            pending_[v].store(p.initialDelta(v, g),
                              std::memory_order_relaxed);
        }
    }

    Value
    value(VertexId v) const
    {
        return values_[v].load(std::memory_order_relaxed);
    }

    Value
    pendingAt(VertexId v) const
    {
        return pending_[v].load(std::memory_order_relaxed);
    }

    std::vector<Value>
    valuesSnapshot() const
    {
        std::vector<Value> out(values_.size());
        for (std::size_t v = 0; v < values_.size(); v++)
            out[v] = values_[v].load(std::memory_order_relaxed);
        return out;
    }

    std::vector<Value>
    pendingSnapshot() const
    {
        std::vector<Value> out(pending_.size());
        for (std::size_t v = 0; v < pending_.size(); v++)
            out[v] = pending_[v].load(std::memory_order_relaxed);
        return out;
    }

    /** SCATTER primitive: merge a delta into v's accumulator. */
    void
    accumulate(const Program &p, VertexId v, Value d)
    {
        atomicCombine(p, pending_[v], d);
    }

    /** Result of one processVertex call. */
    struct Result
    {
        AccumOutcome outcome = AccumOutcome::Idle;
        double magnitude = 0.0;       //!< value move (Applied) or the
                                      //!< sub-tolerance move (Folded)
        std::uint32_t scatters = 0;   //!< out-edge accumulates done
    };

    /**
     * Extract-apply-scatter one vertex.
     *
     * The extraction (exchange to identity) and the scatter
     * (atomicCombine per out-edge) are each single atomic RMWs, so any
     * interleaving with concurrent processors — including of the same
     * vertex — loses nothing: a delta is in exactly one accumulator or
     * one extractor's hands at all times.  The value update is a CAS
     * loop for the same reason.  A move <= tol folds the still-useful
     * part of the delta back into the accumulator (conservation)
     * without activating downstream blocks (quiescence).
     *
     * @param on_activate (dst_vertex, est_move) called after an
     *        out-edge accumulate when dst's whole accumulated pending
     *        would move dst's value by more than tol (the Maiter
     *        activation filter); the engine maps dst to its block and
     *        activates.  Sub-tolerance accumulations stay parked in
     *        dst's accumulator — for additive programs the last
     *        combiner of a super-tolerance total always observes it,
     *        and for monotone min-programs a skipped wake can never
     *        become necessary later (the estimated move only
     *        shrinks), so no wakeup is lost.
     * @param scratch caller-owned scatter decode buffer — processors
     *        run concurrently, so each participant brings its own.
     */
    template <typename OnActivate>
    Result
    processVertex(const Program &p, VertexId v, double tol,
                  OnActivate &&on_activate, ScatterScratch &scratch)
    {
        Result r;
        const Value identity = p.identityDelta();
        const Value d =
            pending_[v].exchange(identity, std::memory_order_acq_rel);
        if (d == identity)
            return r;
        Value cur = values_[v].load(std::memory_order_relaxed);
        for (;;) {
            const Value next = p.apply(cur, d);
            const double mag = p.magnitude(cur, next);
            if (!(mag > tol)) {
                const Value residual = p.foldResidual(d, cur);
                if (!(residual == identity))
                    atomicCombine(p, pending_[v], residual);
                r.outcome = AccumOutcome::Folded;
                r.magnitude = mag;
                return r;
            }
            if (values_[v].compare_exchange_weak(
                    cur, next, std::memory_order_acq_rel,
                    std::memory_order_relaxed)) {
                r.outcome = AccumOutcome::Applied;
                r.magnitude = mag;
                BlockId hint = graph.numBlocks() ? graph.blockOf(v)
                                                 : invalidBlock;
                for (EdgeId pos : graph.scatterList(v, scratch)) {
                    const Value contrib =
                        p.propagate(v, next, d, pos, graph);
                    if (contrib == identity)
                        continue;
                    const VertexId dst = graph.edgeDstAt(pos, hint);
                    const Value after =
                        atomicCombine(p, pending_[dst], contrib);
                    r.scatters++;
                    const Value dval =
                        values_[dst].load(std::memory_order_relaxed);
                    const double est =
                        p.magnitude(dval, p.apply(dval, after));
                    if (est > tol) {
                        // Schedulers ACCUMULATE activation priorities
                        // (Gauss-Southwell L1), so pass this
                        // contribution's own move — the running sum
                        // then tracks dst's total pending.  Passing
                        // `est` (already a total) would double-count
                        // earlier contributions and over-prioritize
                        // hot vertices into premature, fragmenting
                        // applies.
                        on_activate(
                            dst,
                            p.magnitude(dval, p.apply(dval, contrib)));
                    }
                }
                return r;
            }
            // CAS lost to a concurrent applier of this vertex: re-apply
            // d against the fresh value (monotonicity makes any order
            // reach the same fixpoint).
        }
    }

    /** processVertex with a throwaway scratch (direct test callers). */
    template <typename OnActivate>
    Result
    processVertex(const Program &p, VertexId v, double tol,
                  OnActivate &&on_activate)
    {
        ScatterScratch scratch;
        return processVertex(p, v, tol,
                             std::forward<OnActivate>(on_activate),
                             scratch);
    }

  private:
    /** @return the post-combine accumulator value. */
    static Value
    atomicCombine(const Program &p, std::atomic<Value> &slot, Value d)
    {
        Value cur = slot.load(std::memory_order_relaxed);
        for (;;) {
            const Value next = p.combineDelta(cur, d);
            if (next == cur)
                return cur;   // absorbing element (e.g. a worse min)
            if (slot.compare_exchange_weak(cur, next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
                return next;
        }
    }

    const BlockPartition &graph;
    std::vector<std::atomic<Value>> values_;
    std::vector<std::atomic<Value>> pending_;
};

/**
 * Threaded accumulative engine.  Run-loop structure follows
 * AsyncEngine (one control mutex taken once per block, caller-thread
 * pump, quantum requeue, budget/StopToken halts that never claim
 * convergence), minus the dispatch FIFO: deltas are commutative, so
 * staleness bounding is unnecessary and blocks are claimed straight
 * from the scheduler.
 *
 * vertexUpdates counts vertices whose value actually moved (Applied) —
 * that is the "vertex updates to tolerance" the Maiter comparison is
 * about.  Folded claims (sub-tolerance residual returned to the
 * accumulator) are deferrals, not updates; they are tallied in the
 * engine.accum.foldbacks counter instead.  warmStart is ignored:
 * resuming needs a consistent (values, pending) pair, which cached
 * final values alone cannot provide.
 */
template <AccumulativeProgram Program>
class AccumEngine
{
  public:
    using Value = typename Program::Value;

    AccumEngine(const BlockPartition &g, Program p, EngineOptions opt)
        : graph(g), program(std::move(p)), options(opt)
    {
    }

    /**
     * Run to quiescence (or maxEpochs / stop).
     * @param out_values receives the final vertex values.
     */
    EngineReport
    run(std::vector<Value> &out_values)
    {
        Timer timer;
        state_ = std::make_unique<AccumState<Program>>(graph, program);
        EngineReport report = runParallel(timer);
        out_values = state_->valuesSnapshot();
        report.seconds = timer.seconds();
        return report;
    }

    /** Post-run accumulator snapshot (conservation audits). */
    std::vector<Value>
    pendingSnapshot() const
    {
        return state_ ? state_->pendingSnapshot()
                      : std::vector<Value>{};
    }

  private:
    std::shared_ptr<Executor>
    pool() const
    {
        return options.executor ? options.executor : Executor::shared();
    }

    /** Per-block tallies a pump reports into the shared counters. */
    struct BlockTally
    {
        std::uint64_t processed = 0;   //!< Applied vertices
        std::uint64_t folded = 0;
        std::uint64_t edges = 0;
        std::uint64_t scatters = 0;
        double l1 = 0.0;               //!< sum of applied magnitudes
    };

    EngineReport
    runParallel(const Timer &timer)
    {
        // Root span of this engine run; under the serve layer it nests
        // into the submitting job's causal tree.
        obs::Span run_span("engine.accum.run");
        EngineReport report;
        const double n = std::max<double>(graph.numVertices(), 1.0);
        const std::uint32_t participation =
            std::max(1u, options.numThreads);
        auto sched = makeScheduler(options.schedule, graph.numBlocks(),
                                   options.seed, participation);
        for (BlockId b = 0; b < graph.numBlocks(); b++)
            sched->activate(b, initialActivationPriority());
        // Concurrent-push schedulers (OBIM) take activations straight
        // from the scatter hook; serialized ones get them batched under
        // the control lock.
        const bool direct_push = sched->concurrentPush();
        const std::uint64_t max_updates =
            updateBudget(options.maxEpochs, n);
        constexpr std::uint32_t kQuantum = 32;

        struct Ctl
        {
            std::mutex m;
            std::uint32_t inflight = 0;   //!< claimed, not committed
            std::uint32_t pumps = 0;      //!< live participants
            bool halted = false;          //!< stop token or budget
            double winL1 = 0.0;
            std::uint64_t winActive = 0;
            double nextSample = 0.0;
        } ctl;
        std::atomic<std::uint64_t> vertex_updates{0};
        std::atomic<std::uint64_t> block_updates{0};
        std::atomic<std::uint64_t> edge_traversals{0};
        std::atomic<std::uint64_t> scatter_writes{0};
        std::atomic<std::uint64_t> foldbacks{0};

        // Resolve metrics once per run; record per block.
        obs::Histogram &gasHist = obs::histogram(
            "engine.accum.block_gas_us", obs::latencyBucketsUs());
        obs::Histogram &fanoutHist = obs::histogram(
            "engine.accum.scatter_fanout", obs::fanoutBuckets());
        obs::Histogram &residualHist = obs::histogram(
            "engine.accum.residual_mag", obs::magnitudeBuckets());

        const double sampleInterval =
            options.traceInterval > 0.0 ? options.traceInterval : 1.0;
        ctl.nextSample = sampleInterval;

        std::shared_ptr<Executor> exec = pool();
        std::shared_ptr<Executor::Job> job =
            exec->createJob(participation);

        // ---- ctl.m must be held by callers of the *Locked helpers ----

        auto claimLocked = [&]() -> std::optional<BlockId> {
            if (!ctl.halted && options.stop.stopRequested())
                ctl.halted = true;
            if (!ctl.halted &&
                vertex_updates.load(std::memory_order_relaxed) >=
                    max_updates)
                ctl.halted = true;
            if (ctl.halted)
                return std::nullopt;
            std::optional<BlockId> b = sched->next();
            if (b)
                ctl.inflight++;
            return b;
        };

        std::function<void()> pumpTask;   // assigned below

        auto spawnLocked = [&] {
            std::size_t want = std::min<std::size_t>(
                participation > ctl.pumps ? participation - ctl.pumps
                                          : 0,
                sched->activeCount());
            for (; want > 0; want--) {
                ctl.pumps++;
                job->submit(pumpTask);
            }
        };

        // Process one block: extract-apply-scatter each vertex.  With
        // direct_push the scatter hook activates the scheduler inline;
        // otherwise activations buffer until the locked commit.
        auto processBlock =
            [&](BlockId b,
                std::vector<std::pair<BlockId, double>> &activations,
                ScatterScratch &scratch)
            -> BlockTally {
            BlockTally t;
            activations.clear();
            auto on_activate = [&](VertexId dst, double mag) {
                const BlockId db = graph.blockOf(dst);
                if (direct_push)
                    sched->activate(db, mag);
                else
                    activations.emplace_back(db, mag);
            };
            for (VertexId v = graph.blockBegin(b);
                 v < graph.blockEnd(b); v++) {
                auto r = state_->processVertex(
                    program, v, options.tolerance, on_activate, scratch);
                switch (r.outcome) {
                  case AccumOutcome::Idle:
                    break;
                  case AccumOutcome::Folded:
                    t.folded++;
                    residualHist.record(r.magnitude);
                    break;
                  case AccumOutcome::Applied:
                    t.processed++;
                    t.l1 += r.magnitude;
                    t.edges += graph.outDegree(v);
                    t.scatters += r.scatters;
                    break;
                }
            }
            return t;
        };

        auto pump = [&](bool allow_requeue) {
            std::vector<std::pair<BlockId, double>> activations;
            ScatterScratch scratch;   // per-participant decode buffer
            std::uint32_t done = 0;
            std::optional<BlockId> cur;
            {
                std::lock_guard<std::mutex> lock(ctl.m);
                cur = claimLocked();
                if (!cur) {
                    ctl.pumps--;
                    return;
                }
            }
            for (;;) {
                BlockTally t;
                {
                    obs::ScopedLatency lat(gasHist);
                    t = processBlock(*cur, activations, scratch);
                }
                fanoutHist.record(static_cast<double>(t.scatters));
                vertex_updates.fetch_add(t.processed,
                                         std::memory_order_relaxed);
                block_updates.fetch_add(1, std::memory_order_relaxed);
                edge_traversals.fetch_add(t.edges,
                                          std::memory_order_relaxed);
                scatter_writes.fetch_add(t.scatters,
                                         std::memory_order_relaxed);
                foldbacks.fetch_add(t.folded,
                                    std::memory_order_relaxed);
                if (options.progress) {
                    options.progress->accumulate(t.processed, 1,
                                                 t.edges, t.scatters);
                }
                done++;
                bool requeue = false;
                {
                    std::lock_guard<std::mutex> lock(ctl.m);
                    if (!direct_push) {
                        for (auto &[dst, delta] : activations)
                            sched->activate(dst, delta);
                    }
                    ctl.inflight--;
                    if constexpr (obs::kEnabled) {
                        ctl.winL1 += t.l1;
                        ctl.winActive += t.processed - t.folded;
                        if (options.convergence) {
                            const double ep =
                                static_cast<double>(
                                    vertex_updates.load(
                                        std::memory_order_relaxed)) /
                                n;
                            if (ep + 1e-12 >= ctl.nextSample) {
                                ctl.nextSample = ep + sampleInterval;
                                obs::ConvergencePoint pt;
                                pt.epochs = ep;
                                pt.residual = ctl.winL1;
                                pt.activeVertices = ctl.winActive;
                                pt.vertexUpdates = vertex_updates.load(
                                    std::memory_order_relaxed);
                                pt.edgeTraversals = edge_traversals.load(
                                    std::memory_order_relaxed);
                                pt.wallSeconds = timer.seconds();
                                options.convergence->record(pt);
                                ctl.winL1 = 0.0;
                                ctl.winActive = 0;
                            }
                        }
                    }
                    if (allow_requeue && done >= kQuantum &&
                        sched->activeCount() > 0 && !ctl.halted) {
                        // Keep ctl.pumps: the requeued task inherits
                        // this participant's slot.
                        requeue = true;
                    } else {
                        cur = claimLocked();
                        if (cur)
                            spawnLocked();
                        else
                            ctl.pumps--;
                    }
                }
                if (requeue) {
                    job->submit(pumpTask);
                    return;
                }
                if (!cur)
                    return;
            }
        };
        pumpTask = [&pump] { pump(/*allow_requeue=*/true); };

        {
            std::lock_guard<std::mutex> lock(ctl.m);
            ctl.pumps = 1;   // the calling thread participates
            spawnLocked();
        }
        pump(/*allow_requeue=*/false);
        job->wait();   // all pool participants drained

        report.stopped = options.stop.stopRequested();
        report.vertexUpdates = vertex_updates.load();
        report.blockUpdates = block_updates.load();
        report.edgeTraversals = edge_traversals.load();
        report.scatterWrites = scatter_writes.load();
        report.epochs = static_cast<double>(report.vertexUpdates) / n;
        // A halted run never claims convergence: the scheduler still
        // holds the unclaimed work, so empty() is the honest test.  No
        // lock needed: job->wait() ordered every participant (and all
        // their activations) before this point.
        report.converged =
            !report.stopped && !ctl.halted && sched->empty();
        if constexpr (obs::kEnabled) {
            report.residual = ctl.winL1;
            if (options.convergence) {
                obs::ConvergencePoint pt;
                pt.epochs = report.epochs;
                pt.residual = ctl.winL1;
                pt.activeVertices = ctl.winActive;
                pt.vertexUpdates = report.vertexUpdates;
                pt.edgeTraversals = report.edgeTraversals;
                pt.wallSeconds = timer.seconds();
                options.convergence->recordFinal(pt);
            }
            obs::counter("engine.accum.foldbacks").add(foldbacks.load());
            if (report.converged) {
                obs::counter("engine.accum.updates_to_tolerance")
                    .add(report.vertexUpdates);
            }
            const SchedulerCounters c = sched->counters();
            obs::counter("scheduler.activations").add(c.activations);
            obs::counter("scheduler.heap_pushes").add(c.heapPushes);
            obs::counter("scheduler.stale_discards")
                .add(c.staleDiscards);
            obs::counter("scheduler.refreshes").add(c.refreshes);
        }
        return report;
    }

    const BlockPartition &graph;
    Program program;
    EngineOptions options;
    std::unique_ptr<AccumState<Program>> state_;
};

} // namespace graphabcd

#endif // GRAPHABCD_CORE_ACCUM_ENGINE_HH
