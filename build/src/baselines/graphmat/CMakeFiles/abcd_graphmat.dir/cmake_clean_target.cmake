file(REMOVE_RECURSE
  "libabcd_graphmat.a"
)
