#include "obs/prometheus.hh"

#include <cctype>
#include <iomanip>
#include <sstream>

#include "obs/metrics.hh"

namespace graphabcd {

std::string
prometheusName(const std::string &name)
{
    std::string out = "graphabcd_";
    for (char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

namespace {

/** Bound formatting must be stable across lines: Prometheus treats
 *  `le` as an opaque label value, so "0.5" and "0.50" would be two
 *  different buckets. */
std::string
formatDouble(double x)
{
    std::ostringstream os;
    os << std::setprecision(12) << x;
    return os.str();
}

} // namespace

std::string
prometheusText(const MetricsSnapshot &snap)
{
    std::ostringstream os;
    os << std::setprecision(12);
    for (const auto &[name, value] : snap.counters) {
        const std::string pn = prometheusName(name) + "_total";
        os << "# TYPE " << pn << " counter\n"
           << pn << ' ' << value << '\n';
    }
    for (const auto &[name, value] : snap.gauges) {
        const std::string pn = prometheusName(name);
        os << "# TYPE " << pn << " gauge\n"
           << pn << ' ' << value << '\n';
    }
    for (const auto &[name, hist] : snap.histograms) {
        const std::string pn = prometheusName(name);
        os << "# TYPE " << pn << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < hist.bounds.size(); i++) {
            cumulative += i < hist.counts.size() ? hist.counts[i] : 0;
            os << pn << "_bucket{le=\"" << formatDouble(hist.bounds[i])
               << "\"} " << cumulative << '\n';
        }
        os << pn << "_bucket{le=\"+Inf\"} " << hist.count << '\n'
           << pn << "_sum " << hist.sum << '\n'
           << pn << "_count " << hist.count << '\n';
    }
    return os.str();
}

std::string
prometheusText()
{
    return prometheusText(MetricsRegistry::global().snapshotAll());
}

} // namespace graphabcd
