/**
 * @file
 * Tests of the GraphMat baseline: BSP semantics, algorithm correctness
 * against the exact references, active-vertex filtering, and the CPU
 * cost model.
 */

#include <gtest/gtest.h>

#include "algorithms/reference.hh"
#include "baselines/graphmat/cpu_model.hh"
#include "baselines/graphmat/engine.hh"
#include "baselines/graphmat/programs.hh"
#include "graph/generators.hh"

namespace graphabcd {
namespace {

using namespace graphmat;

TEST(GraphMat, PageRankMatchesPowerIteration)
{
    Rng rng(71);
    EdgeList el = generateRmat(300, 2400, rng);
    auto degs = el.outDegrees();
    GraphMatEngine<PageRankSpmv> engine(el, PageRankSpmv(0.85, degs));
    std::vector<PageRankSpmv::Value> x;
    GraphMatReport report = engine.run(x, 1e-12);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v].rank, ref[v], 1e-7);
}

TEST(GraphMat, PageRankIterationsAreSupersteps)
{
    // BSP: every iteration updates every vertex with in-edges, so the
    // effective epoch count is close to the superstep count.
    Rng rng(72);
    EdgeList el = generateRmat(500, 5000, rng);
    auto degs = el.outDegrees();
    GraphMatEngine<PageRankSpmv> engine(el, PageRankSpmv(0.85, degs));
    std::vector<PageRankSpmv::Value> x;
    GraphMatReport report = engine.run(x, 1e-9);
    EXPECT_GT(report.iterations, 5u);
    EXPECT_NEAR(report.effectiveEpochs, report.iterations,
                0.35 * report.iterations);
}

TEST(GraphMat, SsspMatchesDijkstra)
{
    Rng rng(73);
    EdgeList el = generateRmat(300, 2400, rng, {.weighted = true});
    GraphMatEngine<SsspSpmv> engine(el, SsspSpmv(0));
    std::vector<double> dist;
    GraphMatReport report = engine.run(dist, 1e-9);
    EXPECT_TRUE(report.converged);
    std::vector<double> ref = dijkstraReference(el, 0);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(dist[v], ref[v], 1e-6);
}

TEST(GraphMat, SsspActiveFilteringShrinksWork)
{
    // The frontier property the paper leans on: effective epochs are
    // far below iterations x 1 epoch because only active vertices are
    // processed each superstep.
    Rng rng(74);
    EdgeList el = generateGrid2d(40, 40, rng, true);
    GraphMatEngine<SsspSpmv> engine(el, SsspSpmv(0));
    std::vector<double> dist;
    GraphMatReport report = engine.run(dist, 1e-9);
    EXPECT_TRUE(report.converged);
    EXPECT_LT(report.effectiveEpochs,
              0.6 * static_cast<double>(report.iterations));
}

TEST(GraphMat, BfsMatchesReference)
{
    Rng rng(75);
    EdgeList el = generateRmat(256, 1500, rng);
    GraphMatEngine<BfsSpmv> engine(el, BfsSpmv(0));
    std::vector<double> depth;
    engine.run(depth, 1e-9);
    std::vector<double> ref = bfsReference(el, 0);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_DOUBLE_EQ(depth[v], ref[v]);
}

TEST(GraphMat, CcMatchesUnionFind)
{
    Rng rng(76);
    EdgeList el = generateErdosRenyi(400, 300, rng);
    EdgeList sym = el.symmetrized();
    GraphMatEngine<CcSpmv> engine(sym, CcSpmv());
    std::vector<double> labels;
    engine.run(labels, 1e-9);
    std::vector<double> ref = ccReference(el);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_DOUBLE_EQ(labels[v], ref[v]);
}

TEST(GraphMat, CfReducesRmse)
{
    Rng rng(77);
    BipartiteGraph bg = generateRatings(100, 40, 3000, rng,
                                        {.latent_dim = 8});
    EdgeList sym = bg.graph.symmetrized();
    CfSpmv<8> prog(0.2, 0.02);

    std::vector<std::array<float, 8>> init;
    for (VertexId v = 0; v < sym.numVertices(); v++)
        init.push_back(prog.init(v, sym.numVertices()));
    double rmse0 = cfSpmvRmse<8>(bg.graph, init);

    GraphMatEngine<CfSpmv<8>> engine(sym, prog);
    std::vector<std::array<float, 8>> x;
    engine.run(x, 1e-6, /*max_iters=*/30);
    EXPECT_LT(cfSpmvRmse<8>(bg.graph, x), rmse0 * 0.8);
}

TEST(GraphMat, IterCallbackCanStopEarly)
{
    Rng rng(78);
    EdgeList el = generateRmat(200, 1200, rng);
    auto degs = el.outDegrees();
    GraphMatEngine<PageRankSpmv> engine(el, PageRankSpmv(0.85, degs));
    std::vector<PageRankSpmv::Value> x;
    GraphMatReport report = engine.run(
        x, 1e-12, 1000,
        [](std::uint32_t iter, const auto &) { return iter >= 3; });
    EXPECT_EQ(report.iterations, 3u);
    EXPECT_TRUE(report.converged);
}

TEST(CpuModel, GraphmatLandsInThePaperThroughputBand)
{
    // Paper Table II: GraphMat sustains ~400-1100 MTES on the 14-core
    // host.  The model must land in that band for a PR-like profile.
    graphmat::GraphMatReport r;
    r.iterations = 20;
    r.edgesProcessed = 20ull * 5000000;   // 5M-edge graph, all active
    r.messagesSent = r.edgesProcessed;
    r.vertexUpdates = 20ull * 1000000;
    CpuTimeReport t = graphmatTime(r, 1000000, 8);
    EXPECT_GT(t.mtes, 300.0);
    EXPECT_LT(t.mtes, 1500.0);
}

TEST(CpuModel, TimeScalesWithWork)
{
    graphmat::GraphMatReport small, big;
    small.iterations = big.iterations = 10;
    small.edgesProcessed = 1000000;
    big.edgesProcessed = 10000000;
    small.vertexUpdates = big.vertexUpdates = 100000;
    double t_small = graphmatTime(small, 100000, 8).seconds;
    double t_big = graphmatTime(big, 100000, 8).seconds;
    EXPECT_GT(t_big, 5.0 * t_small);
}

TEST(CpuModel, WiderValuesCostMore)
{
    EngineReport r;
    r.edgeTraversals = 1000000;
    r.scatterWrites = 500000;
    r.blockUpdates = 100;
    double narrow = softwareAbcdTime(r, 100000, 8).seconds;
    double wide = softwareAbcdTime(r, 100000, 64).seconds;
    EXPECT_GT(wide, narrow * 2.0);
}

} // namespace
} // namespace graphabcd
