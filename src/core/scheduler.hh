/**
 * @file
 * Block selection (scheduling) strategies — paper Sec. III-B / IV-B.
 *
 * A scheduler owns the active list: blocks become active when SCATTER
 * writes changed values into their edge slice, and inactive when picked
 * for processing.  The algorithm terminates when no block is active
 * (the Termination Unit's check in Fig. 2, step 1).
 *
 * PriorityScheduler implements the Gauss-Southwell rule with the paper's
 * approximation: a block's priority is the L1 norm of the value changes
 * recently scattered into it (an estimate of its gradient magnitude),
 * cheap to maintain and reset when the block is processed.
 *
 * ObimScheduler implements the same rule with Galois/Katana's OBIM
 * (ordered-by-integer-metric) structure: priorities are bucketed into
 * logarithmic levels, each level is a FIFO of fixed-size chunks filled
 * through per-worker slots, and activate() is safe to call concurrently
 * — which lets the accumulative engine push from SCATTER hooks without
 * holding the control lock.  next() publishes the caller's own open
 * chunk before selecting a level, so a consumer never pops a weaker
 * level while its own stronger activations sit unpublished (with one
 * consumer this makes processing strictly level-ordered).
 *
 * Concurrency contract
 * --------------------
 * Unless concurrentPush() returns true, a scheduler is *fully
 * serialized*: the engine's control lock (or a single-threaded run
 * loop) must cover every call.  PriorityScheduler in particular relies
 * on this — next() identifies a block's live heap entry by comparing
 * the popped key against pushedPrio[b], and an activate() interleaved
 * between the pop and the compare could retag the live entry and make
 * next() discard the only entry of an active block (breaking the
 * "active blocks missing from the heap" invariant).  Under the
 * serialized contract that interleaving cannot happen; the audit test
 * in tests/test_scheduler.cc pins the invariant.
 *
 * When concurrentPush() returns true (ObimScheduler), activate() may be
 * called from any thread at any time, but next() / activeCount() /
 * counters() remain single-consumer: at most one thread calls them at a
 * time (the engine already guarantees this by claiming under its
 * control lock).  A next() that returns nullopt while a concurrent
 * activate() is mid-flight may miss that block; engines must therefore
 * only treat "empty" as quiescence once in-flight work has drained
 * (the same inflight==0 test they already apply).
 */

#ifndef GRAPHABCD_CORE_SCHEDULER_HH
#define GRAPHABCD_CORE_SCHEDULER_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/options.hh"
#include "graph/types.hh"
#include "obs/obs.hh"
#include "support/random.hh"

namespace graphabcd {

/**
 * Cumulative work counters a scheduler maintains over its lifetime.
 * Plain (non-atomic) fields: every scheduler call already happens under
 * the engine's control lock.  heapPushes / staleDiscards / refreshes
 * measure heap churn and are only meaningful for PriorityScheduler.
 */
struct SchedulerCounters
{
    std::uint64_t activations = 0;   //!< activate() calls
    std::uint64_t heapPushes = 0;    //!< entries pushed into the heap
    std::uint64_t staleDiscards = 0; //!< lazy-deleted entries seen by next()
    std::uint64_t refreshes = 0;     //!< re-pushes of already-active blocks
};

/**
 * Abstract block scheduler.  All implementations are deterministic given
 * the same activation sequence (Random uses a seeded generator).
 */
class BlockScheduler
{
  public:
    virtual ~BlockScheduler() = default;

    /**
     * Record that block `b` received updated inputs.
     * @param priority_delta estimated gradient-magnitude increase (L1 of
     *        the incoming value changes); ignored by order-based rules.
     */
    virtual void activate(BlockId b, double priority_delta) = 0;

    /**
     * Pick the next block to process and mark it inactive.
     * @return std::nullopt when no block is active (quiescence).
     */
    virtual std::optional<BlockId> next() = 0;

    /** @return number of active blocks. */
    virtual std::size_t activeCount() const = 0;

    /** @return whether no block is active. */
    bool empty() const { return activeCount() == 0; }

    /** @return current priority estimate of block b (0 if unsupported). */
    virtual double priority(BlockId) const { return 0.0; }

    /** @return cumulative work counters (heap fields 0 if heapless). */
    virtual const SchedulerCounters &counters() const { return stats; }

    /**
     * @return whether activate() is safe to call concurrently with
     * other activate() calls and with one next() consumer (see the
     * concurrency contract in the file comment).  False means every
     * call must be serialized by the caller.
     */
    virtual bool concurrentPush() const { return false; }

    /** @return the strategy this scheduler implements. */
    virtual Schedule kind() const = 0;

  protected:
    SchedulerCounters stats;
};

/**
 * Cyclic selection: repeatedly sweeps the block id space in fixed order,
 * skipping inactive blocks.  Predictable access pattern (prefetchable).
 */
class CyclicScheduler : public BlockScheduler
{
  public:
    explicit CyclicScheduler(BlockId num_blocks);

    void activate(BlockId b, double priority_delta) override;
    std::optional<BlockId> next() override;
    std::size_t activeCount() const override { return nActive; }
    Schedule kind() const override { return Schedule::Cyclic; }

  private:
    std::vector<char> active;
    BlockId cursor = 0;
    std::size_t nActive = 0;
};

/**
 * Gauss-Southwell priority selection: argmax of the maintained gradient
 * estimates.  Max-heap with lazy deletion; stale heap entries are skipped
 * on pop, so activate() is O(log B) and next() is amortised O(log B).
 *
 * Serialized-only (concurrentPush() == false): next() tells a block's
 * live heap entry from its stale duplicates by key comparison against
 * pushedPrio, which is sound under the file-level concurrency contract
 * (all calls serialized) but not against interleaved activate() calls.
 * Duplicate *keys* are fine — two entries of one block pushed at equal
 * priorities are interchangeable, and whichever pops second fails the
 * active[] check.  The audit test in tests/test_scheduler.cc checks the
 * invariants (every pop is an active max-priority block; a drain
 * matches a reference model exactly).
 */
class PriorityScheduler : public BlockScheduler
{
  public:
    explicit PriorityScheduler(BlockId num_blocks);

    void activate(BlockId b, double priority_delta) override;
    std::optional<BlockId> next() override;
    std::size_t activeCount() const override { return nActive; }
    double priority(BlockId b) const override { return prio[b]; }
    Schedule kind() const override { return Schedule::Priority; }

  private:
    struct HeapEntry
    {
        double priority;
        BlockId block;

        bool
        operator<(const HeapEntry &other) const
        {
            // std::priority_queue is a max-heap on operator<.
            return priority < other.priority;
        }
    };

    std::vector<double> prio;
    std::vector<double> pushedPrio;   //!< key of the live heap entry
    std::vector<char> active;
    std::vector<HeapEntry> heap;   //!< std::*_heap managed
    std::size_t nActive = 0;
};

/**
 * Uniform random selection among active blocks (ablation baseline; the
 * BCD literature often analyses random selection).
 */
class RandomScheduler : public BlockScheduler
{
  public:
    RandomScheduler(BlockId num_blocks, std::uint64_t seed);

    void activate(BlockId b, double priority_delta) override;
    std::optional<BlockId> next() override;
    std::size_t activeCount() const override { return pool.size(); }
    Schedule kind() const override { return Schedule::Random; }

  private:
    std::vector<BlockId> pool;        //!< active blocks, unordered
    std::vector<std::uint32_t> slot;  //!< block -> pool index or npos
    Rng rng;

    static constexpr std::uint32_t npos = ~0u;
};

/**
 * OBIM (ordered-by-integer-metric) worklist, after Galois/Katana.
 * Approximate Gauss-Southwell at concurrent-push cost:
 *
 *  - a block's accumulated |delta| L1 is mapped by its binary exponent
 *    onto one of 64 logarithmic levels (level 0 = largest priorities),
 *    and a 64-bit occupancy mask lets next() find the best non-empty
 *    level with one countr_zero;
 *  - within a level, blocks sit in a FIFO of fixed-size chunks; pushes
 *    go through per-worker slots (each worker fills a private open
 *    chunk and publishes it when full or when its level changes), so
 *    concurrent activate() calls mostly touch thread-local state plus
 *    one per-block atomic flag;
 *  - a per-block queued flag (exchange) dedups activations; when an
 *    activation raises a block to a strictly better level, a duplicate
 *    entry is pushed and the stale one is discarded on pop (counted in
 *    staleDiscards, like the heap's lazy deletion).
 *
 * Ordering is approximate (per paper Sec. III-B the selection rule only
 * needs to be *biased* toward large gradients): levels are exact,
 * order within a level is chunked FIFO.
 *
 * activate() is thread-safe (concurrentPush() == true); next(),
 * activeCount(), priority() and counters() are single-consumer.
 */
class ObimScheduler : public BlockScheduler
{
  public:
    /**
     * @param num_workers sizing hint for the push-side slot array
     *        (contention, not correctness: more slots = fewer collisions
     *        between concurrently pushing threads).
     */
    ObimScheduler(BlockId num_blocks, std::uint32_t num_workers);

    void activate(BlockId b, double priority_delta) override;
    std::optional<BlockId> next() override;
    std::size_t activeCount() const override;
    double priority(BlockId b) const override;
    const SchedulerCounters &counters() const override;
    bool concurrentPush() const override { return true; }
    Schedule kind() const override { return Schedule::Obim; }

    /** Level a priority maps to (public: pinned by unit tests). */
    static int levelOf(double priority);

    static constexpr int kLevels = 64;
    static constexpr std::uint32_t kChunkSize = 16;

  private:
    struct Chunk
    {
        std::array<BlockId, kChunkSize> items;
        std::uint32_t head = 0;   //!< next index to pop
        std::uint32_t count = 0;  //!< next index to fill
    };

    struct Level
    {
        std::mutex m;
        std::deque<Chunk> chunks;   //!< published, FIFO order
    };

    /** Push-side slot: one open chunk a worker is filling. */
    struct Slot
    {
        std::mutex m;
        Chunk open;
        int level = -1;   //!< level of `open`, -1 when empty
    };

    std::uint32_t slotIndex() const;
    void publishChunk(Chunk &&chunk, int level);
    void pushToSlot(BlockId b, int level);
    std::optional<BlockId> popLevel(int level);
    void drainOwnSlot();
    void drainSlots();

    std::array<Level, kLevels> levels;
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> occupancy{0};   //!< bit l: level l non-empty
    std::atomic<std::uint64_t> slotMask{0};    //!< bit s: slot s non-empty

    std::vector<std::atomic<double>> prio;     //!< accumulated |delta| L1
    std::vector<std::atomic<char>> queued;     //!< has a live entry
    std::vector<std::atomic<int>> queuedLevel; //!< level of the live entry
    std::atomic<std::int64_t> nQueued{0};

    obs::Histogram &popLevelHist;   //!< bucket residency of pops

    // Concurrent-push counters, folded into `snap` by counters().
    std::atomic<std::uint64_t> cActivations{0};
    std::atomic<std::uint64_t> cPushes{0};
    std::atomic<std::uint64_t> cStaleDiscards{0};
    std::atomic<std::uint64_t> cRefreshes{0};
    mutable SchedulerCounters snap;
};

/** Factory keyed by the EngineOptions schedule.
 *  @param num_workers push-side sizing hint, only used by Obim. */
std::unique_ptr<BlockScheduler> makeScheduler(Schedule schedule,
                                              BlockId num_blocks,
                                              std::uint64_t seed,
                                              std::uint32_t num_workers = 8);

/**
 * Initial activation priority used when every block is seeded at the
 * start of a run.  It is *equal* across blocks and far larger than any
 * gradient estimate, so the first sweep visits every block once before
 * Gauss-Southwell ordering takes over — seeding by block density
 * instead measurably hurts convergence on skewed graphs.
 */
inline double
initialActivationPriority()
{
    return 1e9;
}

} // namespace graphabcd

#endif // GRAPHABCD_CORE_SCHEDULER_HH
