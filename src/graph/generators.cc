#include "graph/generators.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "support/logging.hh"

namespace graphabcd {

namespace {

/** Smallest power-of-two exponent with 2^k >= n. */
std::uint32_t
ceilLog2(std::uint64_t n)
{
    std::uint32_t k = 0;
    while ((1ULL << k) < n)
        k++;
    return k;
}

} // namespace

EdgeList
generateRmat(VertexId num_vertices, EdgeId num_edges, Rng &rng,
             const RmatOptions &opts)
{
    GRAPHABCD_ASSERT(num_vertices > 0, "empty RMAT graph requested");
    GRAPHABCD_ASSERT(opts.a + opts.b + opts.c <= 1.0 + 1e-9,
                     "RMAT quadrant probabilities exceed 1");

    const std::uint32_t levels = std::max(1u, ceilLog2(num_vertices));

    // Optional id scrambling permutation so low ids are not hubs.
    std::vector<VertexId> perm;
    if (opts.scramble) {
        perm.resize(num_vertices);
        std::iota(perm.begin(), perm.end(), 0);
        for (VertexId i = num_vertices; i > 1; i--) {
            VertexId j = static_cast<VertexId>(rng.nextBounded(i));
            std::swap(perm[i - 1], perm[j]);
        }
    }

    EdgeList el(num_vertices);
    el.edges().reserve(num_edges);
    const double ab = opts.a + opts.b;
    const double abc = opts.a + opts.b + opts.c;

    for (EdgeId e = 0; e < num_edges; e++) {
        std::uint64_t src = 0, dst = 0;
        for (std::uint32_t level = 0; level < levels; level++) {
            double r = rng.nextDouble();
            src <<= 1;
            dst <<= 1;
            if (r >= ab)
                src |= 1;
            if (r >= opts.a && (r < ab || r >= abc))
                dst |= 1;
        }
        auto s = static_cast<VertexId>(src % num_vertices);
        auto d = static_cast<VertexId>(dst % num_vertices);
        if (!opts.self_loops && s == d) {
            e--;   // resample
            continue;
        }
        if (opts.scramble) {
            s = perm[s];
            d = perm[d];
        }
        float w = 1.0f;
        if (opts.weighted) {
            w = opts.min_weight +
                static_cast<float>(rng.nextDouble()) *
                    (opts.max_weight - opts.min_weight);
        }
        el.addEdge(s, d, w);
    }
    return el;
}

EdgeList
generateErdosRenyi(VertexId num_vertices, EdgeId num_edges, Rng &rng,
                   bool weighted)
{
    GRAPHABCD_ASSERT(num_vertices > 0, "empty ER graph requested");
    EdgeList el(num_vertices);
    el.edges().reserve(num_edges);
    for (EdgeId e = 0; e < num_edges; e++) {
        auto s = static_cast<VertexId>(rng.nextBounded(num_vertices));
        auto d = static_cast<VertexId>(rng.nextBounded(num_vertices));
        if (s == d) {
            e--;
            continue;
        }
        float w = weighted
            ? 1.0f + static_cast<float>(rng.nextDouble()) * 15.0f
            : 1.0f;
        el.addEdge(s, d, w);
    }
    return el;
}

EdgeList
generateChain(VertexId num_vertices, bool weighted)
{
    EdgeList el(num_vertices);
    for (VertexId v = 0; v + 1 < num_vertices; v++)
        el.addEdge(v, v + 1, weighted ? static_cast<float>(v % 7 + 1)
                                      : 1.0f);
    return el;
}

EdgeList
generateCycle(VertexId num_vertices)
{
    EdgeList el = generateChain(num_vertices, false);
    if (num_vertices > 1)
        el.addEdge(num_vertices - 1, 0, 1.0f);
    return el;
}

EdgeList
generateStar(VertexId num_vertices)
{
    EdgeList el(num_vertices);
    for (VertexId v = 1; v < num_vertices; v++)
        el.addEdge(0, v, 1.0f);
    return el;
}

EdgeList
generateGrid2d(VertexId rows, VertexId cols, Rng &rng, bool weighted)
{
    GRAPHABCD_ASSERT(rows > 0 && cols > 0, "degenerate grid");
    EdgeList el(rows * cols);
    auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
    auto wgt = [&]() {
        return weighted
            ? 1.0f + static_cast<float>(rng.nextDouble()) * 15.0f
            : 1.0f;
    };
    for (VertexId r = 0; r < rows; r++) {
        for (VertexId c = 0; c < cols; c++) {
            if (c + 1 < cols) {
                float w = wgt();
                el.addEdge(id(r, c), id(r, c + 1), w);
                el.addEdge(id(r, c + 1), id(r, c), w);
            }
            if (r + 1 < rows) {
                float w = wgt();
                el.addEdge(id(r, c), id(r + 1, c), w);
                el.addEdge(id(r + 1, c), id(r, c), w);
            }
        }
    }
    return el;
}

EdgeList
generateComplete(VertexId num_vertices)
{
    EdgeList el(num_vertices);
    for (VertexId s = 0; s < num_vertices; s++)
        for (VertexId d = 0; d < num_vertices; d++)
            if (s != d)
                el.addEdge(s, d, 1.0f);
    return el;
}

BipartiteGraph
generateRatings(VertexId users, VertexId items, EdgeId num_ratings,
                Rng &rng, const RatingOptions &opts)
{
    GRAPHABCD_ASSERT(users > 0 && items > 0, "degenerate bipartite shape");

    // Plant low-rank structure: hidden factors ~ N(0, 1)/sqrt(H), so the
    // inner product has unit-ish variance; shift/scale into rating range.
    const std::uint32_t h = opts.latent_dim;
    std::vector<double> uf(static_cast<std::size_t>(users) * h);
    std::vector<double> itf(static_cast<std::size_t>(items) * h);
    const double inv_sqrt_h = 1.0 / std::sqrt(static_cast<double>(h));
    for (auto &x : uf)
        x = rng.nextGaussian() * inv_sqrt_h;
    for (auto &x : itf)
        x = rng.nextGaussian() * inv_sqrt_h;

    const double mid = 0.5 * (opts.min_rating + opts.max_rating);
    const double half = 0.5 * (opts.max_rating - opts.min_rating);

    ZipfSampler item_pop(items, opts.item_skew);

    BipartiteGraph bg;
    bg.users = users;
    bg.items = items;
    bg.graph = EdgeList(users + items);
    bg.graph.edges().reserve(num_ratings);

    for (EdgeId e = 0; e < num_ratings; e++) {
        auto u = static_cast<VertexId>(rng.nextBounded(users));
        auto i = static_cast<VertexId>(item_pop.sample(rng));
        double dot = 0.0;
        for (std::uint32_t k = 0; k < h; k++)
            dot += uf[static_cast<std::size_t>(u) * h + k] *
                   itf[static_cast<std::size_t>(i) * h + k];
        double rating = mid + half * std::tanh(dot) +
                        opts.noise * rng.nextGaussian();
        rating = std::clamp(rating, opts.min_rating, opts.max_rating);
        bg.graph.addEdge(bg.userVertex(u), bg.itemVertex(i),
                         static_cast<float>(rating));
    }
    return bg;
}

} // namespace graphabcd
