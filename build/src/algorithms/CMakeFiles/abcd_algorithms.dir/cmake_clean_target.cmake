file(REMOVE_RECURSE
  "libabcd_algorithms.a"
)
