/**
 * @file
 * FragmentShard — one fragment's private slice of a BCD run.
 *
 * A shard owns the vertex values of its contiguous vertex range and the
 * edge-carried value copies of its contiguous in-edge slice (the
 * destination-sliced CSC layout makes both ranges contiguous).  Slice
 * positions whose source vertex lives in another fragment are the
 * *mirror slots*: read-only from the local sweep's perspective, written
 * only when a delta message from the owner fragment is applied.  All
 * state is plain (non-atomic): the engine guarantees at most one runner
 * drives a shard at a time, and hands the shard between runners with
 * acquire/release claim flags.
 *
 * SCATTER of a changed local vertex v splits by ownership along v's
 * sorted scatter-position list: positions inside the local slice are
 * written directly (and their destination blocks activated), and one
 * {v, edgeValue} message per *distinct remote owner* is appended to
 * that owner's outbox — the receiver fans it out to all of its mirror
 * slots, so a vertex with a thousand out-edges into a fragment costs
 * one ring slot, not a thousand.  Messages carry whole edge-carried
 * values (state, not differences), so application is idempotent and
 * per-ring FIFO order is the only ordering needed.
 */

#ifndef GRAPHABCD_FRAGMENT_SHARD_HH
#define GRAPHABCD_FRAGMENT_SHARD_HH

#include <algorithm>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/options.hh"
#include "core/scheduler.hh"
#include "core/vertex_program.hh"
#include "fragment/message_plane.hh"
#include "fragment/topology.hh"
#include "graph/partition.hh"
#include "support/logging.hh"

namespace graphabcd {

/** Work accounting of one FragmentShard::processNext call. */
struct ShardWork
{
    BlockId block = invalidBlock;    //!< global block id processed
    VertexId vertices = 0;           //!< vertex updates
    EdgeId edges = 0;                //!< in-edges streamed
    EdgeId scatterWrites = 0;        //!< local edge positions written
    std::uint64_t messagesQueued = 0; //!< delta messages appended
    double l1Delta = 0.0;            //!< L1 value change of the block
    VertexId changed = 0;            //!< vertices moved > tol
};

/** One fragment's values, mirrors, scheduler, and outboxes. */
template <VertexProgram Program>
class FragmentShard
{
  public:
    using Value = typename Program::Value;
    using Msg = DeltaMsg<Value>;

    FragmentShard(const BlockPartition &g, const FragmentTopology &topo,
                  FragmentId id, const Program &p,
                  const EngineOptions &opt)
        : graph(g), topology(topo), program(p), self(id),
          bBegin(topo.blockBegin(id)),
          vBegin(topo.vertexBegin(id)), vEnd(topo.vertexEnd(id)),
          eBegin(topo.edgeBegin(id)), eEnd(topo.edgeEnd(id))
    {
        const bool warm = [&] {
            if constexpr (std::is_same_v<Value, double>)
                return opt.warmStart &&
                       opt.warmStart->size() == g.numVertices();
            else
                return false;
        }();
        auto initValue = [&](VertexId v) {
            Value init = program.init(v, graph);
            if constexpr (std::is_same_v<Value, double>) {
                if (warm)
                    init = (*opt.warmStart)[v];
            }
            return init;
        };

        values_.resize(vEnd - vBegin);
        for (VertexId v = vBegin; v < vEnd; v++)
            values_[v - vBegin] = initValue(v);

        // Every slice position starts from the source's initial value —
        // including mirror slots, because the program is pure: the
        // remote owner computes exactly the same init, so no start-up
        // message exchange is needed.  The slice [eBegin, eEnd) is
        // exactly the in-edges of the local vertex range, so walking
        // destination in-lists covers it in every layout.
        edgeValues_.resize(eEnd - eBegin);
        for (VertexId v = vBegin; v < vEnd; v++) {
            graph.forEachInEdge(v, [&](EdgeId pos, VertexId src, float) {
                edgeValues_[pos - eBegin] =
                    program.edgeValue(src, initValue(src), graph);
            });
        }

        const BlockId localBlocks = topo.blockCount(id);
        sched = makeScheduler(opt.schedule, localBlocks, opt.seed + id);
        for (BlockId b = 0; b < localBlocks; b++)
            sched->activate(b, initialActivationPriority());

        outboxes.resize(topo.numFragments());
    }

    FragmentShard(const FragmentShard &) = delete;
    FragmentShard &operator=(const FragmentShard &) = delete;

    /**
     * GATHER-APPLY-SCATTER the next active local block.  Local scatter
     * positions are written in place; remote ones become outbox
     * messages, accounted into `plane` (sent counts at append time).
     * @return nullopt when no local block is active.
     */
    std::optional<ShardWork>
    processNext(double tol, MessagePlane<Value> &plane)
    {
        const std::optional<BlockId> local = sched->next();
        if (!local)
            return std::nullopt;
        const BlockId b = bBegin + *local;

        ShardWork work;
        work.block = b;
        const BlockEdgesView slice = graph.blockEdges(b, sliceScratch_);
        for (VertexId v = graph.blockBegin(b); v < graph.blockEnd(b);
             v++) {
            auto acc = program.identity();
            const Value old = values_[v - vBegin];
            for (EdgeId e = graph.inEdgeBegin(v); e < graph.inEdgeEnd(v);
                 e++) {
                acc = program.combine(
                    acc, program.edgeTerm(old, edgeValues_[e - eBegin],
                                          slice.wgt[e - slice.base]));
            }
            const Value next = program.apply(v, acc, old, graph);
            const double d = program.delta(old, next);
            work.l1Delta += d;
            values_[v - vBegin] = next;
            if (!(d > tol))
                continue;
            work.changed++;
            scatter(v, next, work);
        }
        work.vertices = graph.blockVertexCount(b);
        work.edges = graph.blockEdgeCount(b);
        if (work.messagesQueued > 0)
            plane.noteSent(work.messagesQueued);
        return work;
    }

    /**
     * Fan one incoming delta message out to the local mirror slots of
     * its vertex and activate the affected blocks.
     * @return mirror positions written.
     */
    EdgeId
    applyMessage(const Msg &msg)
    {
        const auto positions = graph.scatterList(msg.vertex,
                                                 scatterScratch_);
        auto it = std::lower_bound(positions.begin(), positions.end(),
                                   eBegin);
        EdgeId writes = 0;
        double edge_delta = 0.0;
        BlockId hint = bBegin;
        for (; it != positions.end() && *it < eEnd; ++it) {
            const EdgeId pos = *it;
            if (writes == 0) {
                // All local copies carry the same old value; the first
                // serves as the activation-priority baseline.
                edge_delta =
                    program.delta(edgeValues_[pos - eBegin], msg.value);
            }
            edgeValues_[pos - eBegin] = msg.value;
            sched->activate(graph.dstBlockOfEdge(pos, hint) - bBegin,
                            edge_delta);
            writes++;
        }
        GRAPHABCD_ASSERT(writes > 0,
                         "delta message for a vertex with no mirror here");
        return writes;
    }

    /**
     * Push pending outbox messages into the plane's rings, as far as
     * ring space allows — never blocks; a full ring leaves the
     * remainder queued (the shard then stays non-idle).
     * @param stamp sender's global block-update clock, published per
     *        flushed channel for the receiver's staleness gauge.
     * @return true when every outbox drained completely.
     */
    bool
    flushOutboxes(MessagePlane<Value> &plane, std::uint64_t stamp)
    {
        bool all_drained = true;
        for (FragmentId d = 0;
             d < static_cast<FragmentId>(outboxes.size()); d++) {
            Outbox &ob = outboxes[d];
            if (ob.head == ob.buf.size()) {
                ob.buf.clear();
                ob.head = 0;
                continue;
            }
            auto &ch = plane.channel(self, d);
            const std::size_t k =
                ch.ring.pushN(ob.buf.data() + ob.head,
                              ob.buf.size() - ob.head);
            ob.head += k;
            if (k > 0)
                ch.flushStamp.store(stamp, std::memory_order_relaxed);
            if (ob.head == ob.buf.size()) {
                ob.buf.clear();
                ob.head = 0;
            } else {
                all_drained = false;
            }
        }
        return all_drained;
    }

    /** @return messages appended but not yet pushed into a ring. */
    std::size_t
    pendingOutbox() const
    {
        std::size_t pending = 0;
        for (const Outbox &ob : outboxes)
            pending += ob.buf.size() - ob.head;
        return pending;
    }

    /** @return whether no local block is active. */
    bool schedulerEmpty() const { return sched->empty(); }

    /** @return this shard's scheduler (counter flush at run end). */
    const BlockScheduler &scheduler() const { return *sched; }

    /** @return the fragment's local values, indexed v - vertexBegin. */
    const std::vector<Value> &values() const { return values_; }

    VertexId vertexBegin() const { return vBegin; }
    VertexId vertexEnd() const { return vEnd; }

  private:
    struct Outbox
    {
        std::vector<Msg> buf;
        std::size_t head = 0;   //!< messages [0, head) already pushed
    };

    /** SCATTER one changed vertex: local writes + one msg per owner. */
    void
    scatter(VertexId v, const Value &next, ShardWork &work)
    {
        const auto positions = graph.scatterList(v, scatterScratch_);
        if (positions.empty())
            return;
        const Value ev = program.edgeValue(v, next, graph);
        // Positions are sorted, so the local run is contiguous and the
        // remote owners are monotone: one ownership lookup per owner
        // change, one message per distinct remote owner.
        FragmentId last_owner = self;
        bool have_local_delta = false;
        double edge_delta = 0.0;
        BlockId hint = bBegin;
        for (const EdgeId pos : positions) {
            if (pos >= eBegin && pos < eEnd) {
                if (!have_local_delta) {
                    edge_delta = program.delta(edgeValues_[pos - eBegin],
                                               ev);
                    have_local_delta = true;
                }
                edgeValues_[pos - eBegin] = ev;
                sched->activate(
                    graph.dstBlockOfEdge(pos, hint) - bBegin,
                    edge_delta);
                work.scatterWrites++;
                continue;
            }
            const FragmentId owner = topology.fragmentOfEdge(pos);
            if (owner != last_owner) {
                outboxes[owner].buf.push_back(Msg{v, ev});
                work.messagesQueued++;
                last_owner = owner;
            }
        }
    }

    const BlockPartition &graph;
    const FragmentTopology &topology;
    Program program;
    const FragmentId self;
    const BlockId bBegin;
    const VertexId vBegin;
    const VertexId vEnd;
    const EdgeId eBegin;
    const EdgeId eEnd;

    std::vector<Value> values_;      //!< local values, v - vBegin
    std::vector<Value> edgeValues_;  //!< slice copies, pos - eBegin
    std::unique_ptr<BlockScheduler> sched;
    std::vector<Outbox> outboxes;    //!< per destination fragment

    // Layout decode buffers.  Safe as members: at most one runner
    // drives a shard at a time (the claim-flag contract above).
    EdgeSliceScratch sliceScratch_;
    ScatterScratch scatterScratch_;
};

} // namespace graphabcd

#endif // GRAPHABCD_FRAGMENT_SHARD_HH
