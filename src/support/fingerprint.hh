/**
 * @file
 * Incremental 64-bit fingerprint builder (FNV-1a).
 *
 * The serve layer keys its ResultCache and graph registry entries by a
 * fingerprint of (graph identity, algorithm, parameters, engine
 * options).  FNV-1a is deterministic across runs and platforms (unlike
 * std::hash), cheap, and mixes short structured inputs well; the
 * builder mixes field *boundaries* too (lengths, bit patterns), so
 * adjacent fields cannot alias — ("ab", "c") and ("a", "bc") hash
 * differently.
 */

#ifndef GRAPHABCD_SUPPORT_FINGERPRINT_HH
#define GRAPHABCD_SUPPORT_FINGERPRINT_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace graphabcd {

/**
 * Order-sensitive hash accumulator.  Mix fields in a fixed order, then
 * read value(); equal field sequences give equal fingerprints.
 */
class Fingerprint
{
  public:
    /** Mix a raw byte range. */
    Fingerprint &mixBytes(const void *data, std::size_t size);

    /** Mix an unsigned integer (fixed 8-byte encoding). */
    Fingerprint &mix(std::uint64_t v);

    /** Mix a signed integer. */
    Fingerprint &
    mix(std::int64_t v)
    {
        return mix(static_cast<std::uint64_t>(v));
    }

    /** Mix a double by bit pattern (0.1 != 0.1000001). */
    Fingerprint &mix(double v);

    /** Mix a string, length-prefixed so concatenations cannot alias. */
    Fingerprint &mix(std::string_view s);

    /** Mix a boolean. */
    Fingerprint &
    mix(bool v)
    {
        return mix(static_cast<std::uint64_t>(v ? 1 : 2));
    }

    /** @return the accumulated 64-bit fingerprint. */
    std::uint64_t value() const { return hash; }

  private:
    // FNV-1a 64-bit offset basis.
    std::uint64_t hash = 0xcbf29ce484222325ull;
};

} // namespace graphabcd

#endif // GRAPHABCD_SUPPORT_FINGERPRINT_HH
