/**
 * @file
 * Process-wide metrics: counters, gauges, and fixed-bucket histograms
 * cheap enough to live on engine hot paths.
 *
 * The paper's headline results are mechanism claims — fewer epochs from
 * priority scheduling (Fig. 7), bounded staleness from the bounded task
 * queue (Sec. III-D), bandwidth-bound PEs (Fig. 8/9) — and none of them
 * are observable from end-of-run totals alone.  This registry holds the
 * live view: every metric is a single relaxed atomic (or a short array
 * of them for histogram buckets), so recording never takes a lock and
 * never synchronises writers.  Aggregation (dump/snapshot) pays the
 * cost instead, which is the right trade for monitoring data.
 *
 * Registration (name lookup) takes a mutex and returns a reference that
 * stays valid for the registry's lifetime — resolve metrics once per
 * run, not once per record.  Instrumentation call sites should go
 * through the obs:: facade (obs/obs.hh), which compiles to nothing when
 * GRAPHABCD_OBS_ENABLED is 0.
 */

#ifndef GRAPHABCD_OBS_METRICS_HH
#define GRAPHABCD_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace graphabcd {

namespace detail {

/** Relaxed add on an atomic double (portable CAS; fetch_add(double)
 *  is C++20 but not universally lock-free). */
inline void
atomicAdd(std::atomic<double> &target, double x)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + x,
                                         std::memory_order_relaxed))
        ;
}

/** Relaxed monotonic min update. */
inline void
atomicMin(std::atomic<double> &target, double x)
{
    double cur = target.load(std::memory_order_relaxed);
    while (x < cur && !target.compare_exchange_weak(
                          cur, x, std::memory_order_relaxed))
        ;
}

/** Relaxed monotonic max update. */
inline void
atomicMax(std::atomic<double> &target, double x)
{
    double cur = target.load(std::memory_order_relaxed);
    while (x > cur && !target.compare_exchange_weak(
                          cur, x, std::memory_order_relaxed))
        ;
}

} // namespace detail

/** Monotonic event count.  add() is one relaxed fetch_add. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (queue depth, utilization). */
class Gauge
{
  public:
    void
    set(double x)
    {
        value_.store(x, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram.  The bucket layout is immutable after
 * construction, so record() is a binary search over plain doubles plus
 * relaxed fetch_adds — no locks, no allocation, safe from any thread.
 *
 * Bucket i counts samples x with bounds[i-1] < x <= bounds[i]; one
 * implicit overflow bucket catches everything above the last bound.
 */
class Histogram
{
  public:
    /** Aggregated view; taken with relaxed loads (monitoring data). */
    struct Snapshot
    {
        std::vector<double> bounds;        //!< upper bounds, ascending
        std::vector<std::uint64_t> counts; //!< bounds.size() + 1 buckets
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;   //!< meaningful only when count > 0
        double max = 0.0;   //!< meaningful only when count > 0

        // Most recent exemplar (recordExemplar): one concrete sample
        // with the job/span that produced it, so a latency outlier in
        // the histogram links back to its trace tree.
        bool hasExemplar = false;
        double exemplarValue = 0.0;
        std::uint64_t exemplarJob = 0;
        std::uint64_t exemplarSpan = 0;

        double
        mean() const
        {
            return count ? sum / static_cast<double>(count) : 0.0;
        }

        /**
         * @return an upper estimate of the q-quantile: the upper bound
         * of the bucket holding the q*count-th sample (max for the
         * overflow bucket).  q in [0, 1].
         */
        double quantile(double q) const;
    };

    /** @param upper_bounds strictly ascending bucket upper bounds. */
    explicit Histogram(std::vector<double> upper_bounds);

    /** Count one sample; lock-free and wait-free on x86/arm. */
    void
    record(double x)
    {
        buckets_[bucketIndex(x)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        detail::atomicAdd(sum_, x);
        detail::atomicMin(min_, x);
        detail::atomicMax(max_, x);
    }

    /**
     * Count one sample and attach it as the histogram's exemplar — a
     * last-write-wins (value, job, span) triple linking the histogram
     * back to the causal trace (obs/span.hh).  The exemplar update
     * takes a small mutex, so use it only on cold per-job paths (queue
     * wait, whole-run latency), never per block.
     */
    void
    recordExemplar(double x, std::uint64_t job, std::uint64_t span)
    {
        record(x);
        std::lock_guard<std::mutex> lock(exemplarMtx_);
        exemplarValue_ = x;
        exemplarJob_ = job;
        exemplarSpan_ = span;
        hasExemplar_ = true;
    }

    Snapshot snapshot() const;
    void reset();

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double
    max() const
    {
        return count() ? max_.load(std::memory_order_relaxed) : 0.0;
    }

  private:
    std::size_t bucketIndex(double x) const;

    const std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_;
    std::atomic<double> max_;

    mutable std::mutex exemplarMtx_;   //!< guards the exemplar triple
    bool hasExemplar_ = false;
    double exemplarValue_ = 0.0;
    std::uint64_t exemplarJob_ = 0;
    std::uint64_t exemplarSpan_ = 0;
};

/**
 * One consistent-enough view of a whole registry, for renderers that
 * should not hold the registration mutex while formatting (Prometheus
 * exposition, the periodic Sampler).  Values are relaxed loads; names
 * are sorted ascending within each kind.
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/**
 * Name -> metric store.  Metrics are created on first use and never
 * destroyed before the registry, so returned references are stable and
 * safe to cache across a whole run.  One process-wide instance backs
 * the obs:: facade; separate instances exist only for tests.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry (what STATS dumps). */
    static MetricsRegistry &global();

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /**
     * @param upper_bounds used only when the histogram does not exist
     * yet; a second registration under the same name returns the
     * existing histogram with its original buckets.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upper_bounds);

    /**
     * One line per metric, sorted by name:
     *   counter <name> <value>
     *   gauge <name> <value>
     *   hist <name> count=N sum=S mean=M min=m max=X p50=... p99=...
     */
    std::string dump() const;

    /** @return every metric's current value (relaxed loads). */
    MetricsSnapshot snapshotAll() const;

    /** Zero every metric (references stay valid).  For tests/RESET. */
    void reset();

  private:
    mutable std::mutex mtx_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace graphabcd

#endif // GRAPHABCD_OBS_METRICS_HH
