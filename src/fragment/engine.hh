/**
 * @file
 * FragmentEngine — multi-fragment scale-out execution of one BCD run.
 *
 * The graph is cut into contiguous, edge-balanced fragments
 * (FragmentTopology); each fragment's values, mirrors, scheduler, and
 * outboxes live in a FragmentShard, and all cross-fragment traffic goes
 * through the MessagePlane's SPSC rings.  This is the libgrape-lite /
 * GraphScale shared-nothing model run inside one process: the same
 * partitioning later maps each fragment to a process or an accelerator
 * (the HARP sim's multi-device affinity reuses FragmentTopology).
 *
 * Threading: the engine spawns nothing.  Participants — the calling
 * thread plus up to min(numThreads, fragments) - 1 pool tasks on the
 * shared work-stealing executor — sweep the fragments round-robin from
 * staggered offsets and claim one at a time with an acquire/release
 * flag, so each shard has at most one runner and its state stays plain
 * (non-atomic).  A claimed fragment is *pumped*: drain incoming rings
 * (apply deltas to mirror slots, activate blocks), process a bounded
 * quantum of scheduler blocks, then flush outboxes as far as ring space
 * allows.  Pumps never block on a full ring — the remainder stays in
 * the outbox and the fragment simply stays non-idle — so two fragments
 * flooding each other cannot deadlock.
 *
 * Termination is the four-counter scheme in shared memory: global
 * seq_cst sent/received counters (sent bumped at outbox-append time)
 * plus a per-fragment idle flag that every pump clears at entry and
 * recomputes at exit.  A detector fires when sent == received, every
 * fragment is idle, and a re-read of sent shows nothing was produced
 * in between; the seq_cst total order makes the double-read sound.
 */

#ifndef GRAPHABCD_FRAGMENT_ENGINE_HH
#define GRAPHABCD_FRAGMENT_ENGINE_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "core/options.hh"
#include "core/scheduler.hh"
#include "core/vertex_program.hh"
#include "fragment/message_plane.hh"
#include "fragment/shard.hh"
#include "fragment/topology.hh"
#include "graph/partition.hh"
#include "obs/obs.hh"
#include "runtime/executor.hh"
#include "support/timer.hh"

namespace graphabcd {

/** Per-fragment outcome accounting, exposed for tests and bench. */
struct FragmentRunStats
{
    std::uint64_t blockUpdates = 0;
    std::uint64_t messagesSent = 0;
    std::uint64_t messagesReceived = 0;
    /** L1 residual of the fragment's last sample window (obs builds). */
    double residual = 0.0;
};

/**
 * Sharded BCD engine over a fragment topology.  Works for every scalar
 * program (the shard state is plain values, no atomicity requirement).
 */
template <VertexProgram Program>
class FragmentEngine
{
  public:
    using Value = typename Program::Value;
    using Msg = DeltaMsg<Value>;

    FragmentEngine(const BlockPartition &g, Program p, EngineOptions opt)
        : graph(g), program(std::move(p)), options(opt),
          topology_(g, std::max(1u, opt.fragments))
    {
    }

    /** @return the realised shard layout (after clamping). */
    const FragmentTopology &topology() const { return topology_; }

    /** @return per-fragment stats of the last run() (empty before). */
    const std::vector<FragmentRunStats> &
    fragmentStats() const
    {
        return stats_;
    }

    /**
     * Run to global quiescence (or maxEpochs / stop).
     * @param out_values receives the stitched final vertex values.
     */
    EngineReport
    run(std::vector<Value> &out_values)
    {
        Timer timer;
        // Root span of this engine run; under the serve layer it nests
        // into the submitting job's causal tree, and each productive
        // fragment pump records a child span below (participantLoop).
        obs::Span run_span("engine.fragment.run");
        EngineReport report;
        const FragmentId nFrags = topology_.numFragments();
        const double n = std::max<double>(graph.numVertices(), 1.0);

        // Ring capacity scales with shard size but stays bounded: the
        // outbox absorbs bursts beyond it without blocking.
        const std::size_t ringCap = std::clamp<std::size_t>(
            graph.numVertices() / std::max<FragmentId>(nFrags, 1), 1024,
            65536);
        MessagePlane<Value> plane(nFrags, ringCap);

        struct FragCtl
        {
            std::unique_ptr<FragmentShard<Program>> shard;
            alignas(64) std::atomic<bool> claimed{false};
            std::atomic<bool> idle{false};
            // Below: mutated only by the claiming runner (handed off
            // through the claim flag), read after the run drains.
            std::uint64_t blockUpdates = 0;
            std::uint64_t sent = 0;
            std::uint64_t received = 0;
            double winL1 = 0.0;
            std::uint64_t winActive = 0;
            double nextSample = 0.0;
            std::shared_ptr<obs::ConvergenceSeries> series;
        };
        std::vector<std::unique_ptr<FragCtl>> frags(nFrags);
        const double sampleInterval =
            options.traceInterval > 0.0 ? options.traceInterval : 1.0;
        for (FragmentId f = 0; f < nFrags; f++) {
            frags[f] = std::make_unique<FragCtl>();
            frags[f]->shard = std::make_unique<FragmentShard<Program>>(
                graph, topology_, f, program, options);
            frags[f]->nextSample = sampleInterval;
            if constexpr (obs::kEnabled) {
                if (options.convergence) {
                    frags[f]->series = obs::beginConvergence(
                        options.convergence->label() + ".frag" +
                        std::to_string(f));
                }
            }
        }

        std::atomic<std::uint64_t> vertex_updates{0};
        std::atomic<std::uint64_t> block_updates{0};
        std::atomic<std::uint64_t> edge_traversals{0};
        std::atomic<std::uint64_t> scatter_writes{0};
        std::atomic<bool> halted{false};
        std::atomic<bool> quiesced{false};
        std::atomic<bool> done{false};
        const std::uint64_t max_updates =
            updateBudget(options.maxEpochs, n);

        // Resolve metrics once per run; record per pump / per block.
        obs::Counter &sentCtr = obs::counter("fragment.messages_sent");
        obs::Counter &recvCtr =
            obs::counter("fragment.messages_received");
        obs::Histogram &depthHist = obs::histogram(
            "fragment.ring_depth", obs::ringDepthBuckets());
        obs::Histogram &staleHist = obs::histogram(
            "fragment.mirror_staleness_blocks", obs::stalenessBuckets());

        // Blocks one pump processes before flushing and releasing the
        // fragment; bounds both mirror staleness and claim latency.
        constexpr std::uint32_t kBlocksPerPump = 32;
        // Messages drained per popN batch.
        constexpr std::size_t kDrainBatch = 256;
        // Outbox backpressure: beyond this backlog a pump stops
        // producing and spends its quantum draining + flushing.
        const std::size_t outboxCap = 4 * ringCap;
        // Sweeps a pool task runs before requeueing itself, so
        // concurrent runs interleave on a shared pool.
        constexpr std::uint32_t kRoundsPerTask = 64;

        // ---- one pump: drain -> process -> flush -> recompute idle ----
        // `batch_buf` is per-participant scratch (each participant owns
        // its own), never shared across threads.
        auto pumpOnce = [&](FragCtl &fc, FragmentId f,
                            std::vector<Msg> &batch_buf) -> bool {
            // Entry store must be seq_cst *before* any apply, so the
            // detector can never pair a stale idle=true with this
            // pump's received increments.
            fc.idle.store(false, std::memory_order_seq_cst);
            FragmentShard<Program> &shard = *fc.shard;
            bool did_work = false;

            for (FragmentId src = 0; src < nFrags; src++) {
                if (src == f)
                    continue;
                auto &ch = plane.channel(src, f);
                if constexpr (obs::kEnabled) {
                    const std::size_t depth = ch.ring.size();
                    if (depth > 0)
                        depthHist.record(static_cast<double>(depth));
                }
                for (;;) {
                    const std::size_t k = ch.ring.popN(
                        batch_buf.data(), batch_buf.size());
                    if (k == 0)
                        break;
                    if constexpr (obs::kEnabled) {
                        const std::uint64_t now = block_updates.load(
                            std::memory_order_relaxed);
                        const std::uint64_t stamp = ch.flushStamp.load(
                            std::memory_order_relaxed);
                        staleHist.record(static_cast<double>(
                            now > stamp ? now - stamp : 0));
                    }
                    EdgeId writes = 0;
                    for (std::size_t i = 0; i < k; i++)
                        writes += shard.applyMessage(batch_buf[i]);
                    scatter_writes.fetch_add(
                        writes, std::memory_order_relaxed);
                    fc.received += k;
                    plane.noteReceived(k);
                    recvCtr.add(k);
                    did_work = true;
                }
            }

            std::uint32_t blocks = 0;
            while (blocks < kBlocksPerPump) {
                if (halted.load(std::memory_order_relaxed))
                    break;
                if (options.stop.stopRequested()) {
                    halted.store(true, std::memory_order_relaxed);
                    break;
                }
                if (vertex_updates.load(std::memory_order_relaxed) >=
                    max_updates) {
                    halted.store(true, std::memory_order_relaxed);
                    break;
                }
                if (shard.pendingOutbox() > outboxCap)
                    break;
                std::optional<ShardWork> work =
                    shard.processNext(options.tolerance, plane);
                if (!work)
                    break;
                did_work = true;
                blocks++;
                fc.blockUpdates++;
                fc.sent += work->messagesQueued;
                sentCtr.add(work->messagesQueued);
                vertex_updates.fetch_add(work->vertices,
                                         std::memory_order_relaxed);
                block_updates.fetch_add(1, std::memory_order_relaxed);
                edge_traversals.fetch_add(work->edges,
                                          std::memory_order_relaxed);
                scatter_writes.fetch_add(work->scatterWrites,
                                         std::memory_order_relaxed);
                if (options.progress) {
                    options.progress->accumulate(
                        work->vertices, 1, work->edges,
                        work->scatterWrites);
                }
                if constexpr (obs::kEnabled) {
                    fc.winL1 += work->l1Delta;
                    fc.winActive += work->changed;
                    if (fc.series) {
                        const double ep =
                            static_cast<double>(vertex_updates.load(
                                std::memory_order_relaxed)) /
                            n;
                        if (ep + 1e-12 >= fc.nextSample) {
                            fc.nextSample = ep + sampleInterval;
                            obs::ConvergencePoint pt;
                            pt.epochs = ep;
                            pt.residual = fc.winL1;
                            pt.activeVertices = fc.winActive;
                            pt.vertexUpdates = vertex_updates.load(
                                std::memory_order_relaxed);
                            pt.edgeTraversals = edge_traversals.load(
                                std::memory_order_relaxed);
                            pt.wallSeconds = timer.seconds();
                            fc.series->record(pt);
                            fc.winL1 = 0.0;
                            fc.winActive = 0;
                        }
                    }
                }
            }

            const bool drained = shard.flushOutboxes(
                plane,
                block_updates.load(std::memory_order_relaxed));
            if (blocks > 0)
                did_work = true;

            bool rings_empty = true;
            for (FragmentId src = 0; src < nFrags && rings_empty;
                 src++) {
                if (src != f && !plane.channel(src, f).ring.empty())
                    rings_empty = false;
            }
            // Exit store seq_cst: the detector's idle sweep totally
            // orders against the sent/received counter reads.
            fc.idle.store(shard.schedulerEmpty() && drained &&
                              rings_empty,
                          std::memory_order_seq_cst);
            return did_work;
        };

        // ---- quiescence detector (any participant may fire it) ----
        auto tryTerminate = [&] {
            const std::uint64_t s1 = plane.sent();
            if (s1 != plane.received())
                return;
            for (FragmentId f = 0; f < nFrags; f++) {
                if (!frags[f]->idle.load(std::memory_order_seq_cst))
                    return;
            }
            // Nothing was produced while the idle flags were read:
            // every queued message is applied and every scheduler was
            // empty at its owner's last pump exit.
            if (plane.sent() != s1)
                return;
            quiesced.store(true, std::memory_order_relaxed);
            done.store(true, std::memory_order_release);
        };

        // ---- participant: sweep fragments round-robin, claim, pump ----
        auto participantLoop = [&](FragmentId start,
                                   bool bounded) -> bool {
            std::vector<Msg> batch_buf(kDrainBatch);
            std::uint32_t rounds = 0;
            while (!done.load(std::memory_order_acquire)) {
                if (halted.load(std::memory_order_relaxed)) {
                    done.store(true, std::memory_order_release);
                    break;
                }
                bool any = false;
                for (FragmentId i = 0; i < nFrags; i++) {
                    const FragmentId f = (start + i) % nFrags;
                    FragCtl &fc = *frags[f];
                    if (fc.claimed.exchange(
                            true, std::memory_order_acq_rel))
                        continue;   // another runner owns it right now
                    // Record productive pumps as child spans of the
                    // ambient context (the executor task adopted the
                    // job's tree).  Timed manually so idle sweeps — the
                    // overwhelming majority near quiescence — cost two
                    // clock reads at most and record nothing.
                    bool did;
                    if (obs::tracingEnabled()) {
                        const double t0 = obs::traceNowMicros();
                        did = pumpOnce(fc, f, batch_buf);
                        if (did) {
                            obs::completeSpan("fragment.pump", t0,
                                              obs::traceNowMicros() - t0,
                                              obs::childSpan());
                        }
                    } else {
                        did = pumpOnce(fc, f, batch_buf);
                    }
                    any |= did;
                    fc.claimed.store(false, std::memory_order_release);
                    if (done.load(std::memory_order_relaxed))
                        break;
                }
                if (!any) {
                    tryTerminate();
                    if (!done.load(std::memory_order_acquire))
                        std::this_thread::yield();
                }
                if (bounded && ++rounds >= kRoundsPerTask)
                    return done.load(std::memory_order_acquire);
            }
            return true;
        };

        // Participants beyond the fragment count would only contend on
        // claim flags, so the bound is min(threads, fragments).
        const std::uint32_t participants = std::clamp<std::uint32_t>(
            std::min<std::uint32_t>(std::max(1u, options.numThreads),
                                    nFrags),
            1, nFrags);
        std::shared_ptr<Executor> exec =
            options.executor ? options.executor : Executor::shared();
        std::shared_ptr<Executor::Job> job =
            exec->createJob(participants);
        std::atomic<std::uint32_t> offsetSeq{1};
        std::function<void()> poolPump;
        poolPump = [&] {
            const FragmentId start =
                offsetSeq.fetch_add(1, std::memory_order_relaxed) %
                nFrags;
            if (!participantLoop(start, /*bounded=*/true))
                job->submit(poolPump);
        };
        for (std::uint32_t h = 1; h < participants; h++)
            job->submit(poolPump);
        participantLoop(0, /*bounded=*/false);
        job->wait();   // all pool participants drained

        // ---- stitch results and build the report ----
        out_values.resize(graph.numVertices());
        stats_.assign(nFrags, FragmentRunStats{});
        double residual = 0.0;
        std::uint64_t win_active = 0;
        for (FragmentId f = 0; f < nFrags; f++) {
            const FragCtl &fc = *frags[f];
            const FragmentShard<Program> &shard = *fc.shard;
            std::copy(shard.values().begin(), shard.values().end(),
                      out_values.begin() + shard.vertexBegin());
            stats_[f].blockUpdates = fc.blockUpdates;
            stats_[f].messagesSent = fc.sent;
            stats_[f].messagesReceived = fc.received;
            stats_[f].residual = fc.winL1;
            residual += fc.winL1;
            win_active += fc.winActive;
            flushSchedulerCounters(shard.scheduler());
        }

        report.stopped = options.stop.stopRequested();
        report.vertexUpdates = vertex_updates.load();
        report.blockUpdates = block_updates.load();
        report.edgeTraversals = edge_traversals.load();
        report.scatterWrites = scatter_writes.load();
        report.epochs = static_cast<double>(report.vertexUpdates) / n;
        // A halted run never claims convergence: only the detector's
        // proof of global quiescence does.
        report.converged =
            quiesced.load(std::memory_order_relaxed) && !report.stopped;
        report.seconds = timer.seconds();
        if constexpr (obs::kEnabled) {
            report.residual = residual;
            for (FragmentId f = 0; f < nFrags; f++) {
                FragCtl &fc = *frags[f];
                if (!fc.series)
                    continue;
                obs::ConvergencePoint pt;
                pt.epochs = report.epochs;
                pt.residual = fc.winL1;
                pt.activeVertices = fc.winActive;
                pt.vertexUpdates = report.vertexUpdates;
                pt.edgeTraversals = report.edgeTraversals;
                pt.wallSeconds = report.seconds;
                fc.series->recordFinal(pt);
            }
            if (options.convergence) {
                obs::ConvergencePoint pt;
                pt.epochs = report.epochs;
                pt.residual = residual;
                pt.activeVertices = win_active;
                pt.vertexUpdates = report.vertexUpdates;
                pt.edgeTraversals = report.edgeTraversals;
                pt.wallSeconds = report.seconds;
                options.convergence->recordFinal(pt);
            }
        }
        return report;
    }

  private:
    /** Fold a shard's scheduler counters into the registry. */
    static void
    flushSchedulerCounters(const BlockScheduler &sched)
    {
        if constexpr (obs::kEnabled) {
            const SchedulerCounters c = sched.counters();
            obs::counter("scheduler.activations").add(c.activations);
            obs::counter("scheduler.heap_pushes").add(c.heapPushes);
            obs::counter("scheduler.stale_discards")
                .add(c.staleDiscards);
            obs::counter("scheduler.refreshes").add(c.refreshes);
        }
    }

    const BlockPartition &graph;
    Program program;
    EngineOptions options;
    FragmentTopology topology_;
    std::vector<FragmentRunStats> stats_;
};

} // namespace graphabcd

#endif // GRAPHABCD_FRAGMENT_ENGINE_HH
