/**
 * @file
 * Ablations of GraphABCD's individual design choices (the trade-offs
 * Sec. III-C and IV-A argue for), run on the simulated HARP platform:
 *
 *  1. block size vs total execution time — trade-off 1: small blocks
 *     converge faster but pay coordination/invocation overhead, large
 *     blocks stream better; the paper picks a middle block size;
 *  2. dispatch-window (staleness) sweep — asynchronous BCD's bounded
 *     delay: more in-flight blocks improve overlap until staleness
 *     inflates the epoch count;
 *  3. GATHER-APPLY placement — offloading GATHER-APPLY moves |E|
 *     sequential reads to the accelerator and leaves |V| writes, vs a
 *     SCATTER offload that would move 2|E| (Sec. IV-A2's traffic
 *     argument, evaluated from the real partition);
 *  4. state-based vs operation-based updates (Sec. IV-A3): epochs to
 *     converge under serial execution — the async-correctness argument
 *     is demonstrated in tests/test_delta_lp.cc;
 *  6. vertex updates to tolerance — exact sweep vs naive delta vs the
 *     accumulative engine (Maiter-style), the work-efficiency argument
 *     for delta propagation + Gauss-Southwell ordering.  Rows are also
 *     dumped to --json (default BENCH_accum.json) so the trajectory is
 *     reviewable per PR.
 */

#include "bench_common.hh"

#include <fstream>

#include "algorithms/sssp.hh"
#include "core/accum_engine.hh"
#include "core/delta_state.hh"
#include "core/engine.hh"

namespace graphabcd {
namespace {

using namespace bench;

/** One row of ablation 6, flattened for the JSON dump. */
struct UpdatesRow
{
    std::string algo;      //!< "pr" or "sssp"
    std::string variant;   //!< "exact-sweep", "naive-delta", "accum"
    std::uint64_t updates = 0;
    double epochs = 0.0;
    double seconds = 0.0;
    bool converged = false;
};

void
writeJson(const std::vector<UpdatesRow> &rows, const std::string &path,
          const std::string &graph, double scale, double tol)
{
    std::ofstream ofs(path);
    ofs << "{\n  \"benchmark\": \"accum_updates_to_tolerance\",\n"
        << "  \"graph\": \"" << graph << "\",\n"
        << "  \"scale\": " << scale << ",\n"
        << "  \"tolerance\": " << tol << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); i++) {
        const UpdatesRow &r = rows[i];
        ofs << "    {\"algo\": \"" << r.algo << "\", \"variant\": \""
            << r.variant << "\", \"vertex_updates\": " << r.updates
            << ", \"epochs\": " << r.epochs
            << ", \"seconds\": " << r.seconds
            << ", \"converged\": " << (r.converged ? 1 : 0) << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    ofs << "  ]\n}\n";
    std::fprintf(stderr, "info: wrote %s (%zu rows)\n", path.c_str(),
                 rows.size());
}

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declare("graph", "PS", "dataset key");
    flags.declare("json", "BENCH_accum.json",
                  "machine-readable dump of ablation 6");
    if (!flags.parse(argc, argv))
        return 0;

    Dataset ds = loadDataset(flags.get("graph"), flags);

    // ------------------------------------------- 1. block size sweep
    {
        Table t({"block size", "blocks", "epochs", "sim time (s)",
                 "MTES"});
        for (VertexId bs : {64u, 256u, 1024u, 4096u, 16384u}) {
            BlockPartition g(ds.graph, bs);
            EngineOptions opt;
            opt.blockSize = bs;
            RunResult r = abcdPagerank(g, opt, HarpConfig{});
            t.row()
                .add(static_cast<std::uint64_t>(bs))
                .add(static_cast<std::uint64_t>(g.numBlocks()))
                .add(r.iterations, 4)
                .add(r.seconds, 4)
                .add(r.mtes, 4);
        }
        std::cout << "-- ablation 1: block size (PR, "
                  << ds.info.key << ")\n";
        t.print(std::cout);
        std::cout << '\n';
    }

    // --------------------------------- 2. staleness (queue depth) sweep
    {
        Table t({"accel queue depth", "epochs", "sim time (s)",
                 "PE util"});
        BlockPartition g(ds.graph, 512);
        for (std::uint32_t depth : {1u, 4u, 16u, 64u, 256u}) {
            EngineOptions opt;
            opt.blockSize = 512;
            HarpConfig cfg;
            cfg.accelQueueDepth = depth;
            RunResult r = abcdPagerank(g, opt, cfg);
            t.row()
                .add(static_cast<std::uint64_t>(depth))
                .add(r.iterations, 4)
                .add(r.seconds, 4)
                .add(r.sim.peUtilization, 3);
        }
        std::cout << "-- ablation 2: staleness window (PR, "
                  << ds.info.key << ")\n";
        t.print(std::cout);
        std::cout << '\n';
    }

    // ----------------------------- 3. GATHER-APPLY placement traffic
    {
        BlockPartition g(ds.graph, 512);
        const double e = static_cast<double>(g.numEdges());
        const double v = static_cast<double>(g.numVertices());
        const double edge_rec = 16.0, value = 8.0;
        Table t({"offload", "accel traffic (model)", "bytes"});
        t.row()
            .add("GATHER-APPLY only (GraphABCD)")
            .add("|E| reads + |V| writes")
            .add(formatBytes(e * edge_rec + v * value));
        t.row()
            .add("GATHER-APPLY + SCATTER")
            .add("|E| reads + |E| writes")
            .add(formatBytes(e * edge_rec + e * value));
        std::cout << "-- ablation 3: per-epoch accelerator traffic\n";
        t.print(std::cout);
        std::cout << '\n';
    }

    // ------------------------- 4. state-based vs operation-based (PR)
    {
        BlockPartition g(ds.graph, 512);
        EngineOptions opt;
        opt.blockSize = 512;
        opt.tolerance = prTolerance(g.numVertices());
        SerialEngine<PageRankProgram> engine(g, PageRankProgram(0.85),
                                             opt);
        std::vector<double> x;
        EngineReport state_based = engine.run(x);

        std::vector<double> y;
        double delta_epochs = runDeltaSerial(
            g, PageRankDeltaProgram(0.85), y,
            opt.tolerance * 0.05, 500.0);

        Table t({"update information", "epochs",
                 "async-safe without sync?"});
        t.row()
            .add("state-based (GraphABCD)")
            .add(state_based.epochs, 4)
            .add("yes — overwrites are idempotent");
        t.row()
            .add("operation-based (PR-Delta)")
            .add(delta_epochs, 4)
            .add("no — consume/accumulate races (see tests)");
        std::cout << "-- ablation 4: update information\n";
        t.print(std::cout);
    }

    // ------------------- 5. fixed vs edge-balanced block boundaries
    {
        BlockPartition fixed(ds.graph, 512);
        const EdgeId target = fixed.numBlocks()
            ? ds.graph.numEdges() / fixed.numBlocks()
            : 4096;
        BlockPartition balanced(ds.graph, target,
                                BlockPartition::EdgeBalanced{});

        auto stats = [](const BlockPartition &g) {
            EdgeId max_edges = 0;
            for (BlockId b = 0; b < g.numBlocks(); b++)
                max_edges = std::max(max_edges, g.blockEdgeCount(b));
            return max_edges;
        };
        auto run = [&](const BlockPartition &g) {
            EngineOptions opt;
            opt.blockSize = g.blockSize();
            return abcdPagerank(g, opt, HarpConfig{});
        };
        RunResult rf = run(fixed);
        RunResult rb = run(balanced);

        Table t({"partition", "blocks", "max block edges",
                 "sim time (s)", "PE util"});
        t.row()
            .add("fixed 512 vertices")
            .add(static_cast<std::uint64_t>(fixed.numBlocks()))
            .add(static_cast<std::uint64_t>(stats(fixed)))
            .add(rf.seconds, 4)
            .add(rf.sim.peUtilization, 3);
        t.row()
            .add("edge-balanced")
            .add(static_cast<std::uint64_t>(balanced.numBlocks()))
            .add(static_cast<std::uint64_t>(stats(balanced)))
            .add(rb.seconds, 4)
            .add(rb.sim.peUtilization, 3);
        std::cout << "\n-- ablation 5: block load balance\n";
        t.print(std::cout);
    }

    // ---------------- 6. vertex updates to tolerance (work efficiency)
    {
        const double tol = 1e-9;
        BlockPartition g(ds.graph, 512);
        const double n = std::max<double>(g.numVertices(), 1.0);
        std::vector<UpdatesRow> rows;

        auto addRow = [&rows](const char *algo, const char *variant,
                              std::uint64_t updates, double epochs,
                              double seconds, bool converged) {
            rows.push_back(UpdatesRow{algo, variant, updates, epochs,
                                      seconds, converged});
        };

        {   // Exact sweep: synchronous Jacobi rounds (the canonical
            // power iteration — what pagerankReference runs), every
            // vertex recomputed by a full GATHER each round.  This is
            // the baseline Maiter's updates-to-tolerance comparison is
            // defined against.
            EngineOptions opt;
            opt.blockSize = 512;
            opt.tolerance = tol;
            opt.mode = ExecMode::Bsp;
            Timer timer;
            SerialEngine<PageRankProgram> engine(
                g, PageRankProgram(0.85), opt);
            std::vector<double> x;
            EngineReport r = engine.run(x);
            addRow("pr", "exact-sweep", r.vertexUpdates, r.epochs,
                   timer.seconds(), r.converged);
        }
        {   // The repo's own strongest exact engine: Gauss-Seidel block
            // sweeps with the quiescence-driven active list.  Kept as a
            // second comparator so the accum row is judged against both
            // the canonical and the optimized sweep.
            EngineOptions opt;
            opt.blockSize = 512;
            opt.tolerance = tol;
            Timer timer;
            SerialEngine<PageRankProgram> engine(
                g, PageRankProgram(0.85), opt);
            std::vector<double> x;
            EngineReport r = engine.run(x);
            addRow("pr", "serial-gs", r.vertexUpdates, r.epochs,
                   timer.seconds(), r.converged);
        }
        {   // Head of the sweep (tol 1e-5): subtracting a -head row
            // from its full-tolerance row isolates the convergence
            // tail, where Maiter predicts the accumulative win.
            EngineOptions opt;
            opt.blockSize = 512;
            opt.tolerance = 1e-5;
            opt.mode = ExecMode::Bsp;
            Timer timer;
            SerialEngine<PageRankProgram> engine(
                g, PageRankProgram(0.85), opt);
            std::vector<double> x;
            EngineReport r = engine.run(x);
            addRow("pr", "exact-sweep-head", r.vertexUpdates, r.epochs,
                   timer.seconds(), r.converged);
        }
        {   // Naive operation-based delta (correct serially only).
            std::vector<double> y;
            Timer timer;
            double epochs = runDeltaSerial(
                g, PageRankDeltaProgram(0.85), y, tol, 2000.0);
            addRow("pr", "naive-delta",
                   static_cast<std::uint64_t>(epochs * n), epochs,
                   timer.seconds(), epochs < 2000.0);
        }
        // Accumulative engine rows.  Each variant runs at its own
        // natural operating point (the sweeps above are block-size
        // independent, so this is apples-to-apples on the metric):
        //  - accum: Priority at one vertex per block IS the exact
        //    Gauss-Southwell rule — argmax |pending| — plus the 25%
        //    refresh-throttle hysteresis, which lets small pendings
        //    coalesce in the accumulator instead of being applied
        //    eagerly.  The headline row the acceptance bar reads.
        //  - accum-obim: concurrent-push OBIM at chunkier blocks; the
        //    level quantization costs ordering precision, bigger
        //    blocks win some of it back by amortizing the pops.
        //  - accum-cyclic: ordering-free control — what conservation
        //    alone buys before any Gauss-Southwell bias.
        const auto runAccumPr = [&](const char *name, Schedule sch,
                                    VertexId bs, double atol) {
            BlockPartition ga(ds.graph, bs);
            EngineOptions opt;
            opt.blockSize = bs;
            opt.tolerance = atol;
            opt.numThreads = 1;
            opt.schedule = sch;
            Timer timer;
            AccumEngine<PageRankAccumProgram> engine(
                ga, PageRankAccumProgram(0.85), opt);
            std::vector<double> x;
            EngineReport r = engine.run(x);
            addRow("pr", name, r.vertexUpdates, r.epochs,
                   timer.seconds(), r.converged);
        };
        runAccumPr("accum", Schedule::Priority, 1, tol);
        runAccumPr("accum-head", Schedule::Priority, 1, 1e-5);
        runAccumPr("accum-obim", Schedule::Obim, 32, tol);
        runAccumPr("accum-cyclic", Schedule::Cyclic, 8, tol);
        const VertexId src = hubVertex(g);
        {   // SSSP: exact sweep (synchronous Bellman-Ford rounds) vs
            // accumulative (the naive delta machinery is
            // PageRank-specific).
            EngineOptions opt;
            opt.blockSize = 512;
            opt.tolerance = tol;
            opt.mode = ExecMode::Bsp;
            Timer timer;
            SerialEngine<SsspProgram> engine(g, SsspProgram(src), opt);
            std::vector<double> d;
            EngineReport r = engine.run(d);
            addRow("sssp", "exact-sweep", r.vertexUpdates, r.epochs,
                   timer.seconds(), r.converged);
        }
        {
            EngineOptions opt;
            opt.blockSize = 512;
            opt.tolerance = tol;
            Timer timer;
            SerialEngine<SsspProgram> engine(g, SsspProgram(src), opt);
            std::vector<double> d;
            EngineReport r = engine.run(d);
            addRow("sssp", "serial-gs", r.vertexUpdates, r.epochs,
                   timer.seconds(), r.converged);
        }
        {
            BlockPartition gfine(ds.graph, 8);
            EngineOptions opt;
            opt.blockSize = 8;
            opt.tolerance = tol;
            opt.numThreads = 1;
            opt.schedule = Schedule::Obim;
            Timer timer;
            AccumEngine<SsspAccumProgram> engine(
                gfine, SsspAccumProgram(src), opt);
            std::vector<double> d;
            EngineReport r = engine.run(d);
            addRow("sssp", "accum", r.vertexUpdates, r.epochs,
                   timer.seconds(), r.converged);
        }

        Table t({"algo", "variant", "vertex updates", "epochs",
                 "wall (s)", "converged"});
        for (const UpdatesRow &r : rows) {
            t.row()
                .add(r.algo)
                .add(r.variant)
                .add(r.updates)
                .add(r.epochs, 4)
                .add(r.seconds, 4)
                .add(r.converged ? "yes" : "no");
        }
        std::cout << "\n-- ablation 6: vertex updates to tolerance "
                  << "(tol 1e-9, " << ds.info.key << ")\n";
        t.print(std::cout);

        writeJson(rows, flags.get("json"), ds.info.key,
                  flags.getDouble("scale"), tol);
    }

    std::fprintf(stderr,
                 "info: shapes: U-curve over block size; epochs grow "
                 "with queue depth while time falls then flattens; "
                 "edge-balanced blocks cut the straggler tail; the "
                 "accumulative engine reaches tolerance in a fraction "
                 "of the exact sweep's vertex updates.\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
