/**
 * @file
 * Reproduces paper Fig. 7: speedup breakdown of asynchronous execution
 * — 'Async' (GraphABCD) vs 'Barrier' (memory barrier per processed
 * block group) vs 'BSP' (global barrier + Jacobi commits per
 * iteration), plus the effect of Hybrid Execution, for PR and SSSP on
 * the PS and LJ stand-ins.
 *
 * Expected shape: Async beats Barrier by 1.9-4.2x (pure coordination
 * cost — convergence rate is similar) and BSP is 1.4-15.2x slower
 * overall, mostly from its convergence-rate penalty; hybrid execution
 * adds up to 66% (avg 24%).
 */

#include "bench_common.hh"

namespace graphabcd {
namespace {

using namespace bench;

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declareInt("block-size", 512, "block size");
    flags.declare("graphs", "PS,LJ", "dataset keys");
    if (!flags.parse(argc, argv))
        return 0;

    const auto block_size =
        static_cast<VertexId>(flags.getInt("block-size"));

    Table table({"app", "graph", "variant", "time (s)", "epochs",
                 "slowdown vs async"});

    std::string keys = flags.get("graphs");
    std::size_t pos = 0;
    while (pos < keys.size()) {
        auto comma = keys.find(',', pos);
        std::string key = keys.substr(pos, comma - pos);
        pos = comma == std::string::npos ? keys.size() : comma + 1;

        Dataset ds = loadDataset(key, flags);
        BlockPartition g(ds.graph, block_size);

        for (const char *app : {"PR", "SSSP"}) {
            auto run = [&](ExecMode mode, bool hybrid) {
                EngineOptions opt;
                opt.blockSize = block_size;
                opt.mode = mode;
                HarpConfig cfg;
                cfg.hybrid = hybrid;
                return std::string(app) == "PR"
                    ? abcdPagerank(g, opt, cfg)
                    : abcdSssp(g, opt, cfg);
            };
            RunResult async = run(ExecMode::Async, false);
            RunResult hybrid = run(ExecMode::Async, true);
            RunResult barrier = run(ExecMode::Barrier, false);
            RunResult bsp = run(ExecMode::Bsp, false);

            auto emit = [&](const char *name, const RunResult &r) {
                table.row()
                    .add(app)
                    .add(key)
                    .add(name)
                    .add(r.seconds, 4)
                    .add(r.iterations, 4)
                    .add(r.seconds / async.seconds, 3);
            };
            emit("async", async);
            emit("async+hybrid", hybrid);
            emit("barrier", barrier);
            emit("bsp", bsp);
        }
    }

    emitTable(table, flags);
    std::fprintf(stderr,
                 "info: paper shape: barrier 1.9-4.2x slower, bsp "
                 "1.4-15.2x slower, hybrid up to 66%% faster.\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
