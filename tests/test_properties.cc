/**
 * @file
 * Property-based sweeps: invariants that must hold for *every* random
 * graph and configuration, driven by parameterized seeds — partition
 * structure, engine determinism, conservation laws, reduction-unit
 * equivalence, scheduler exhaustiveness.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <unordered_map>

#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "algorithms/sssp.hh"
#include "core/engine.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "graph/partition.hh"
#include "harp/reduction.hh"

namespace graphabcd {
namespace {

class SeedSweep : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, PartitionConservesEdgesAndDegrees)
{
    Rng rng(GetParam());
    const auto n = static_cast<VertexId>(64 + rng.nextBounded(512));
    const EdgeId m = 4 * n + rng.nextBounded(8 * n);
    EdgeList el = generateRmat(n, m, rng);
    const auto bs = static_cast<VertexId>(1 + rng.nextBounded(n));
    BlockPartition g(el, bs);

    // Edge conservation.
    EXPECT_EQ(g.numEdges(), el.numEdges());
    EdgeId via_blocks = 0;
    for (BlockId b = 0; b < g.numBlocks(); b++)
        via_blocks += g.blockEdgeCount(b);
    EXPECT_EQ(via_blocks, el.numEdges());

    // Degree conservation.
    auto outd = el.outDegrees();
    auto ind = el.inDegrees();
    std::uint64_t total_out = 0;
    for (VertexId v = 0; v < n; v++) {
        EXPECT_EQ(g.outDegree(v), outd[v]);
        EXPECT_EQ(g.inDegree(v), ind[v]);
        total_out += g.outDegree(v);
    }
    EXPECT_EQ(total_out, el.numEdges());

    // Vertex ranges tile exactly.
    VertexId covered = 0;
    for (BlockId b = 0; b < g.numBlocks(); b++)
        covered += g.blockVertexCount(b);
    EXPECT_EQ(covered, n);
}

TEST_P(SeedSweep, ScatterIndexIsAPermutation)
{
    Rng rng(GetParam() ^ 0xABCDULL);
    const auto n = static_cast<VertexId>(32 + rng.nextBounded(256));
    EdgeList el = generateErdosRenyi(n, 6 * n, rng);
    BlockPartition g(el, 17);

    std::vector<EdgeId> seen;
    for (VertexId v = 0; v < n; v++) {
        for (EdgeId pos : g.scatterPositions(v)) {
            EXPECT_EQ(g.edgeSrc(pos), v);
            seen.push_back(pos);
        }
    }
    std::sort(seen.begin(), seen.end());
    for (EdgeId e = 0; e < g.numEdges(); e++)
        EXPECT_EQ(seen[e], e);
}

TEST_P(SeedSweep, EngineRunsAreDeterministic)
{
    Rng rng(GetParam() ^ 0x5EEDULL);
    EdgeList el = generateRmat(256, 2048, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.schedule = Schedule::Priority;
    opt.tolerance = 1e-10;
    BlockPartition g(el, opt.blockSize);

    std::vector<double> a, b;
    EngineReport ra =
        SerialEngine<PageRankProgram>(g, PageRankProgram(), opt).run(a);
    EngineReport rb =
        SerialEngine<PageRankProgram>(g, PageRankProgram(), opt).run(b);
    EXPECT_EQ(ra.blockUpdates, rb.blockUpdates);
    EXPECT_EQ(ra.vertexUpdates, rb.vertexUpdates);
    EXPECT_EQ(a, b);
}

TEST_P(SeedSweep, PagerankMassStaysBounded)
{
    // Rank mass can only leak through dangling vertices; it must stay
    // in (0, 1] at the fixed point.
    Rng rng(GetParam() ^ 0x77ULL);
    EdgeList el = generateRmat(200, 1600, rng);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.tolerance = 1e-12;
    BlockPartition g(el, opt.blockSize);
    std::vector<double> x;
    SerialEngine<PageRankProgram>(g, PageRankProgram(), opt).run(x);
    double mass = pagerankMass(x);
    EXPECT_GT(mass, 0.1);
    EXPECT_LE(mass, 1.0 + 1e-9);
    for (double rank : x)
        EXPECT_GT(rank, 0.0);
}

TEST_P(SeedSweep, SsspDistancesRespectTriangleInequality)
{
    Rng rng(GetParam() ^ 0x1234ULL);
    EdgeList el = generateRmat(200, 1600, rng, {.weighted = true});
    EngineOptions opt;
    opt.blockSize = 16;
    opt.tolerance = 1e-9;
    BlockPartition g(el, opt.blockSize);
    std::vector<double> dist;
    SerialEngine<SsspProgram>(g, SsspProgram(0), opt).run(dist);

    // Every edge must satisfy dist[dst] <= dist[src] + w.
    for (const Edge &e : el.edges()) {
        if (dist[e.src] < SsspProgram::unreachable) {
            EXPECT_LE(dist[e.dst],
                      dist[e.src] + static_cast<double>(e.weight) + 1e-6);
        }
    }
    EXPECT_DOUBLE_EQ(dist[0], 0.0);
}

TEST_P(SeedSweep, TaggedReductionEqualsSerialForRandomStreams)
{
    Rng rng(GetParam() ^ 0xFEEDULL);
    const auto tags = static_cast<std::uint32_t>(2 + rng.nextBounded(40));
    std::vector<std::pair<std::uint32_t, double>> stream;
    std::unordered_map<std::uint32_t, std::uint32_t> expected;
    std::unordered_map<std::uint32_t, double> serial;
    const int items = 200 + static_cast<int>(rng.nextBounded(800));
    for (int i = 0; i < items; i++) {
        auto tag = static_cast<std::uint32_t>(rng.nextBounded(tags));
        double v = rng.nextDouble() * 10.0;
        stream.emplace_back(tag, v);
        expected[tag]++;
        serial[tag] += v;
    }
    TaggedReductionUnit<double> unit(
        [](const double &a, const double &b) { return a + b; });
    ReductionStats stats;
    auto result = unit.reduce(stream, expected, &stats);
    ASSERT_EQ(result.size(), serial.size());
    for (const auto &[tag, v] : serial)
        EXPECT_NEAR(result.at(tag), v, 1e-9);
    // Cycle model: stream + one re-injection per combine + latency.
    EXPECT_EQ(stats.cycles,
              static_cast<std::uint64_t>(items) + stats.reductions + 4);
}

TEST_P(SeedSweep, SchedulersDrainExactlyTheActivatedSet)
{
    Rng rng(GetParam() ^ 0xD00DULL);
    const auto blocks = static_cast<BlockId>(8 + rng.nextBounded(100));
    for (Schedule kind :
         {Schedule::Cyclic, Schedule::Priority, Schedule::Random}) {
        auto sched = makeScheduler(kind, blocks, GetParam());
        std::vector<char> activated(blocks, 0);
        const auto picks = 1 + rng.nextBounded(blocks);
        for (std::uint64_t i = 0; i < picks; i++) {
            auto b = static_cast<BlockId>(rng.nextBounded(blocks));
            sched->activate(b, rng.nextDouble() + 0.1);
            activated[b] = 1;
        }
        std::vector<char> drained(blocks, 0);
        while (auto b = sched->next()) {
            EXPECT_FALSE(drained[*b]);   // no duplicates
            drained[*b] = 1;
        }
        EXPECT_EQ(drained, activated);
        EXPECT_TRUE(sched->empty());
    }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SeedSweep,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                         89));

// ------------------------------------------------- failure injection

TEST(FailureInjection, ZeroBlockSizePanics)
{
    EdgeList el = generateChain(8);
    EXPECT_THROW(BlockPartition(el, 0), PanicError);
}

TEST(FailureInjection, NegativeScaleIsFatal)
{
    EXPECT_THROW(makeDataset("WT", -1.0), GraphError);
}

TEST(FailureInjection, GarbledEdgeFileIsFatal)
{
    std::string path = std::filesystem::temp_directory_path() /
                       "abcd_garbled.el";
    {
        std::ofstream ofs(path);
        ofs << "1 2\nnot numbers\n";
    }
    EXPECT_THROW(loadEdgeList(path), FatalError);
    std::remove(path.c_str());
}

TEST(FailureInjection, DijkstraSourceOutOfRangePanics)
{
    EdgeList el = generateChain(4);
    EXPECT_THROW(dijkstraReference(el, 99), PanicError);
}

} // namespace
} // namespace graphabcd
