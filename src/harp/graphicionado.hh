/**
 * @file
 * Analytic model of the Graphicionado ASIC baseline (Ham et al.,
 * MICRO 2016) under the paper's bandwidth projection.
 *
 * The paper compares against Graphicionado's published numbers scaled
 * from its 68 GB/s memory system down to GraphABCD's 12.8 GB/s budget
 * (Table II footnote), arguing both designs are bandwidth bound.  This
 * model reproduces that projection: a push-style BSP pipeline whose
 * per-iteration traffic is streamed edges plus random destination
 * updates, clamped by the 2-streams/cycle pipeline peak, with a global
 * barrier every superstep.  Iteration counts come from the functional
 * GraphMat run — the two share algorithm design options (block size
 * |V|, BSP), which is why the paper reports them in one column.
 */

#ifndef GRAPHABCD_HARP_GRAPHICIONADO_HH
#define GRAPHABCD_HARP_GRAPHICIONADO_HH

#include <cstdint>

#include "baselines/graphmat/engine.hh"
#include "graph/types.hh"

namespace graphabcd {

/** Graphicionado model parameters (defaults = paper's projection). */
struct GraphicionadoConfig
{
    double clockHz = 1e9;            //!< published design point
    double bandwidth = 12.8e9;       //!< projected budget (was 68 GB/s)
    double streamsPerCycle = 2.0;    //!< edge pipeline peak
    double efficiency = 0.7;         //!< achieved fraction of bandwidth
                                     //!< (atomic GATHER + barrier stalls)
    double barrierSeconds = 1e-5;    //!< global barrier per superstep

    /** Bytes per streamed edge (src id + dst id + weight). */
    double edgeBytes = 12.0;

    /**
     * Bytes of random vertex traffic per processed edge.  The eDRAM
     * scratchpad absorbs most of it, but spills on graphs larger than
     * the 64 MB on-chip budget; 8 bytes/edge reflects the projected
     * read-modify-write share that reaches DRAM.
     */
    double vertexBytesPerEdge = 8.0;
};

/** Modelled execution of one algorithm/graph pair. */
struct GraphicionadoReport
{
    double seconds = 0.0;
    double mtes = 0.0;
    std::uint32_t iterations = 0;
};

/**
 * Project a functional GraphMat run (same BSP iterations) onto the
 * Graphicionado pipeline under the reduced-bandwidth budget.
 */
GraphicionadoReport
graphicionadoTime(const graphmat::GraphMatReport &run,
                  VertexId num_vertices, std::uint32_t value_bytes,
                  const GraphicionadoConfig &cfg = {});

} // namespace graphabcd

#endif // GRAPHABCD_HARP_GRAPHICIONADO_HH
