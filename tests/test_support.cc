/**
 * @file
 * Unit tests of the support layer: logging, RNG, stats, tables, flags,
 * unit formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/flags.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/units.hh"

namespace graphabcd {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, FatalAndPanicAreGraphErrors)
{
    EXPECT_THROW(fatal("x"), GraphError);
    EXPECT_THROW(panic("x"), GraphError);
}

TEST(Logging, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(GRAPHABCD_ASSERT(1 == 2, "math broke"), PanicError);
    EXPECT_NO_THROW(GRAPHABCD_ASSERT(1 == 1, "fine"));
}

TEST(Logging, MessageCarriesConcatenatedPieces)
{
    try {
        fatal("value is ", 7, ", not ", 3.5);
        FAIL() << "fatal() returned";
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "value is 7, not 3.5");
    }
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; i++)
        equal += a() == b();
    EXPECT_LT(equal, 4);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextBoundedStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, NextBoundedCoversSmallRangeUniformly)
{
    Rng rng(11);
    std::array<int, 8> hist{};
    const int samples = 80000;
    for (int i = 0; i < samples; i++)
        hist[rng.nextBounded(8)]++;
    for (int count : hist) {
        EXPECT_GT(count, samples / 8 * 0.9);
        EXPECT_LT(count, samples / 8 * 1.1);
    }
}

TEST(Rng, GaussianMomentsLookNormal)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int samples = 100000;
    for (int i = 0; i < samples; i++) {
        double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / samples, 0.0, 0.02);
    EXPECT_NEAR(sq / samples, 1.0, 0.03);
}

TEST(Zipf, ZeroThetaIsUniform)
{
    Rng rng(17);
    ZipfSampler zipf(10, 0.0);
    std::array<int, 10> hist{};
    for (int i = 0; i < 50000; i++)
        hist[zipf.sample(rng)]++;
    for (int count : hist)
        EXPECT_GT(count, 4000);
}

TEST(Zipf, SkewPrefersLowIndices)
{
    Rng rng(19);
    ZipfSampler zipf(1000, 0.9);
    std::uint64_t head = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; i++)
        head += zipf.sample(rng) < 10;
    // With theta=0.9 the top-10 items receive far more than 1% of draws.
    EXPECT_GT(head, total / 10);
}

TEST(Zipf, SamplesStayInRange)
{
    Rng rng(23);
    ZipfSampler zipf(37, 0.7);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(zipf.sample(rng), 37u);
}

TEST(Stats, CountersAccumulate)
{
    StatRegistry stats;
    stats.incr("a");
    stats.incr("a", 4);
    EXPECT_EQ(stats.counter("a"), 5u);
    EXPECT_EQ(stats.counter("missing"), 0u);
}

TEST(Stats, ScalarsOverwrite)
{
    StatRegistry stats;
    stats.set("x", 1.5);
    stats.set("x", 2.5);
    EXPECT_DOUBLE_EQ(stats.scalar("x"), 2.5);
}

TEST(Stats, DistributionTracksMoments)
{
    StatRegistry stats;
    stats.sample("d", 1.0);
    stats.sample("d", 3.0);
    stats.sample("d", 2.0);
    const Distribution &d = stats.distribution("d");
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
}

TEST(Stats, MergeAddsCountersAndDists)
{
    StatRegistry a, b;
    a.incr("c", 2);
    b.incr("c", 3);
    b.sample("d", 5.0);
    a.merge(b);
    EXPECT_EQ(a.counter("c"), 5u);
    EXPECT_EQ(a.distribution("d").count(), 1u);
}

TEST(Table, RendersAlignedAscii)
{
    Table t({"name", "value"});
    t.row().add("pi").add(3.14159, 3);
    t.row().add("answer").add(42);
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscapesCommas)
{
    Table t({"a"});
    t.row().add("x,y");
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_NE(oss.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, OverfilledRowPanics)
{
    Table t({"only"});
    t.row().add("one");
    EXPECT_THROW(t.add("two"), PanicError);
}

TEST(Flags, ParsesAllForms)
{
    Flags flags;
    flags.declare("name", "default", "a string");
    flags.declareInt("count", 3, "an int");
    flags.declareDouble("ratio", 0.5, "a double");
    flags.declareBool("fast", false, "a switch");

    const char *argv[] = {"prog", "--name=alice", "--count", "7",
                          "--fast"};
    ASSERT_TRUE(flags.parse(5, const_cast<char **>(argv)));
    EXPECT_EQ(flags.get("name"), "alice");
    EXPECT_EQ(flags.getInt("count"), 7);
    EXPECT_DOUBLE_EQ(flags.getDouble("ratio"), 0.5);
    EXPECT_TRUE(flags.getBool("fast"));
}

TEST(Flags, UnknownFlagIsFatal)
{
    Flags flags;
    const char *argv[] = {"prog", "--nope", "1"};
    EXPECT_THROW(flags.parse(3, const_cast<char **>(argv)), FatalError);
}

TEST(Units, FormatBytesPicksSuffix)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2 KiB");
    EXPECT_EQ(formatBytes(2.69 * 1024 * 1024), "2.69 MiB");
}

TEST(Units, FormatCountInsertsSeparators)
{
    EXPECT_EQ(formatCount(1470000000ULL), "1,470,000,000");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
}

TEST(Units, FormatSecondsAdapts)
{
    EXPECT_NE(formatSeconds(0.034).find("ms"), std::string::npos);
    EXPECT_NE(formatSeconds(1.577).find("s"), std::string::npos);
    EXPECT_NE(formatSeconds(2e-7).find("ns"), std::string::npos);
}

} // namespace
} // namespace graphabcd
