/**
 * @file
 * Leveled structured logger — one line per event, plain or JSON-lines,
 * compiled out under GRAPHABCD_OBS=OFF like the rest of the obs layer.
 *
 * Call sites pass a component, a fixed message, and typed key=value
 * fields; the variable parts of an event ride the fields, never the
 * message string, so log output stays grep- and `jq`-able:
 *
 *   GRAPHABCD_LOG_INFO("serve", "job finished",
 *                      LOGF("job", id), LOGF("state", "done"));
 *
 *   plain:  2026-08-06T12:34:56.789Z INFO  serve: job finished job=3
 *           state=done
 *   json:   {"ts":"...","level":"info","component":"serve",
 *            "msg":"job finished","job":3,"state":"done"}
 *
 * The logger is header-only on purpose: support/logging.cc (inform/
 * warn) routes through it, and src/support must not link against
 * abcd_obs.  Configuration lives in function-local statics — level and
 * format come from GRAPHABCD_LOG_LEVEL / GRAPHABCD_LOG_FORMAT env vars
 * until a tool overrides them (--log-level / --log-json).  Lines are
 * written to stderr under a mutex (or to a test-injected sink), so
 * concurrent writers never interleave within a line.
 *
 * With GRAPHABCD_OBS_ENABLED=0 the macros expand to `do {} while (0)`
 * — field expressions are never evaluated, matching the facade rule
 * that the OFF build carries zero observability cost.
 */

#ifndef GRAPHABCD_OBS_LOG_HH
#define GRAPHABCD_OBS_LOG_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

#ifndef GRAPHABCD_OBS_ENABLED
#define GRAPHABCD_OBS_ENABLED 1
#endif

namespace graphabcd {
namespace obs {

enum class LogLevel : int
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/** @return the level for a name like "debug"/"info", or fallback. */
inline LogLevel
parseLogLevel(const char *name, LogLevel fallback = LogLevel::Info)
{
    if (!name)
        return fallback;
    if (std::strcmp(name, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(name, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(name, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(name, "error") == 0)
        return LogLevel::Error;
    if (std::strcmp(name, "off") == 0)
        return LogLevel::Off;
    return fallback;
}

inline const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Off: return "off";
    }
    return "info";
}

/**
 * One key=value pair.  The value is formatted at construction (log
 * statements are cold paths); `quoted` remembers whether JSON output
 * must quote it, so numbers and booleans stay typed for `jq`.
 */
struct LogField
{
    const char *key;
    std::string value;
    bool quoted;

    LogField(const char *k, const char *v) : key(k), value(v), quoted(true)
    {
    }

    LogField(const char *k, const std::string &v)
        : key(k), value(v), quoted(true)
    {
    }

    LogField(const char *k, bool v)
        : key(k), value(v ? "true" : "false"), quoted(false)
    {
    }

    LogField(const char *k, double v) : key(k), quoted(false)
    {
        std::ostringstream os;
        os.precision(6);
        os << v;
        value = os.str();
    }

    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                                   !std::is_same_v<T, bool>,
                               int> = 0>
    LogField(const char *k, T v)
        : key(k), value(std::to_string(v)), quoted(false)
    {
    }
};

/**
 * The process-wide logger state: minimum level, output format, and
 * sink.  Everything is inline/static so the header stands alone.
 */
class Logger
{
  public:
    static Logger &
    global()
    {
        static Logger instance;
        return instance;
    }

    bool
    enabled(LogLevel level) const
    {
        return static_cast<int>(level) >=
                   level_.load(std::memory_order_relaxed) &&
               level != LogLevel::Off;
    }

    LogLevel
    level() const
    {
        return static_cast<LogLevel>(
            level_.load(std::memory_order_relaxed));
    }

    void
    setLevel(LogLevel level)
    {
        level_.store(static_cast<int>(level), std::memory_order_relaxed);
    }

    bool json() const { return json_.load(std::memory_order_relaxed); }

    void
    setJson(bool on)
    {
        json_.store(on, std::memory_order_relaxed);
    }

    /** Replace stderr with a capture callback (tests); null restores. */
    void
    setSink(std::function<void(const std::string &)> sink)
    {
        std::lock_guard<std::mutex> lock(mtx_);
        sink_ = std::move(sink);
    }

    /**
     * Secondary observer: sees every emitted line *in addition to* the
     * sink/stderr (the FlightRecorder keeps its recent-log window this
     * way).  Runs under the logger mutex — it must not log and must not
     * block; null removes it.
     */
    void
    setTap(std::function<void(LogLevel, const std::string &)> tap)
    {
        std::lock_guard<std::mutex> lock(mtx_);
        tap_ = std::move(tap);
    }

    /** Format one event and emit it as a single line. */
    void
    write(LogLevel level, const char *component, const char *msg,
          const LogField *fields, std::size_t n_fields)
    {
        std::string line = json_.load(std::memory_order_relaxed)
                               ? formatJson(level, component, msg,
                                            fields, n_fields)
                               : formatPlain(level, component, msg,
                                             fields, n_fields);
        line.push_back('\n');
        std::lock_guard<std::mutex> lock(mtx_);
        if (tap_)
            tap_(level, line);
        if (sink_) {
            sink_(line);
        } else {
            std::fwrite(line.data(), 1, line.size(), stderr);
            std::fflush(stderr);
        }
    }

  private:
    Logger()
    {
        setLevel(parseLogLevel(std::getenv("GRAPHABCD_LOG_LEVEL")));
        const char *fmt = std::getenv("GRAPHABCD_LOG_FORMAT");
        setJson(fmt && std::strcmp(fmt, "json") == 0);
    }

    /** ISO-8601 UTC with milliseconds, e.g. 2026-08-06T12:34:56.789Z */
    static std::string
    timestamp()
    {
        std::timespec ts{};
        std::timespec_get(&ts, TIME_UTC);
        std::tm tm{};
        gmtime_r(&ts.tv_sec, &tm);
        char buf[40];
        std::size_t len = std::strftime(buf, sizeof(buf),
                                        "%Y-%m-%dT%H:%M:%S", &tm);
        std::snprintf(buf + len, sizeof(buf) - len, ".%03ldZ",
                      ts.tv_nsec / 1000000);
        return buf;
    }

    static void
    appendJsonString(std::string &out, const char *s)
    {
        out.push_back('"');
        for (; *s; s++) {
            const char c = *s;
            if (c == '"' || c == '\\') {
                out.push_back('\\');
                out.push_back(c);
            } else if (static_cast<unsigned char>(c) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof(esc), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += esc;
            } else {
                out.push_back(c);
            }
        }
        out.push_back('"');
    }

    static std::string
    formatPlain(LogLevel level, const char *component, const char *msg,
                const LogField *fields, std::size_t n_fields)
    {
        static const char *upper[] = {"DEBUG", "INFO", "WARN", "ERROR"};
        std::string out = timestamp();
        out += ' ';
        out += upper[static_cast<int>(level)];
        out += ' ';
        out += component;
        out += ": ";
        out += msg;
        for (std::size_t i = 0; i < n_fields; i++) {
            out += ' ';
            out += fields[i].key;
            out += '=';
            out += fields[i].value;
        }
        return out;
    }

    static std::string
    formatJson(LogLevel level, const char *component, const char *msg,
               const LogField *fields, std::size_t n_fields)
    {
        std::string out = "{\"ts\":\"";
        out += timestamp();
        out += "\",\"level\":\"";
        out += logLevelName(level);
        out += "\",\"component\":";
        appendJsonString(out, component);
        out += ",\"msg\":";
        appendJsonString(out, msg);
        for (std::size_t i = 0; i < n_fields; i++) {
            out += ',';
            appendJsonString(out, fields[i].key);
            out += ':';
            if (fields[i].quoted)
                appendJsonString(out, fields[i].value.c_str());
            else
                out += fields[i].value;
        }
        out += '}';
        return out;
    }

    std::atomic<int> level_{static_cast<int>(LogLevel::Info)};
    std::atomic<bool> json_{false};
    std::mutex mtx_;
    std::function<void(const std::string &)> sink_;
    std::function<void(LogLevel, const std::string &)> tap_;
};

/**
 * Fatal-error hook: a plain function pointer support/logging.hh's
 * fatal() fires just before throwing, so the FlightRecorder can dump
 * its black box while the failing state still exists.  A function
 * pointer (not std::function) keeps this header dependency-free for
 * src/support, which must not link abcd_obs; it is defined in both
 * build modes because fatal() itself survives GRAPHABCD_OBS=OFF —
 * nothing arms it there, so notifyFatal() stays a no-op load.
 */
using FatalHook = void (*)(const char *message);

inline std::atomic<FatalHook> &
fatalHookSlot()
{
    static std::atomic<FatalHook> slot{nullptr};
    return slot;
}

inline void
setFatalHook(FatalHook hook)
{
    fatalHookSlot().store(hook, std::memory_order_release);
}

inline void
notifyFatal(const char *message)
{
    if (FatalHook hook = fatalHookSlot().load(std::memory_order_acquire))
        hook(message);
}

/** Emit one event if `level` clears the logger's threshold. */
template <typename... Fields>
inline void
logAt(LogLevel level, const char *component, const char *msg,
      Fields &&...fields)
{
    Logger &logger = Logger::global();
    if (!logger.enabled(level))
        return;
    if constexpr (sizeof...(Fields) == 0) {
        logger.write(level, component, msg, nullptr, 0);
    } else {
        const LogField arr[] = {std::forward<Fields>(fields)...};
        logger.write(level, component, msg, arr, sizeof...(Fields));
    }
}

} // namespace obs
} // namespace graphabcd

/** Build a LogField; keeps call sites down to LOGF("job", id). */
#define LOGF(key, value) ::graphabcd::obs::LogField((key), (value))

#if GRAPHABCD_OBS_ENABLED

#define GRAPHABCD_LOG_DEBUG(...) \
    ::graphabcd::obs::logAt(::graphabcd::obs::LogLevel::Debug, __VA_ARGS__)
#define GRAPHABCD_LOG_INFO(...) \
    ::graphabcd::obs::logAt(::graphabcd::obs::LogLevel::Info, __VA_ARGS__)
#define GRAPHABCD_LOG_WARN(...) \
    ::graphabcd::obs::logAt(::graphabcd::obs::LogLevel::Warn, __VA_ARGS__)
#define GRAPHABCD_LOG_ERROR(...) \
    ::graphabcd::obs::logAt(::graphabcd::obs::LogLevel::Error, __VA_ARGS__)

#else // !GRAPHABCD_OBS_ENABLED

// Arguments are swallowed unevaluated: the OFF build must not even
// format field values.
#define GRAPHABCD_LOG_DEBUG(...) do { } while (0)
#define GRAPHABCD_LOG_INFO(...) do { } while (0)
#define GRAPHABCD_LOG_WARN(...) do { } while (0)
#define GRAPHABCD_LOG_ERROR(...) do { } while (0)

#endif // GRAPHABCD_OBS_ENABLED

#endif // GRAPHABCD_OBS_LOG_HH
