/**
 * @file
 * Delta message plane — the inter-fragment communication fabric.
 *
 * One bounded SpscRing per ordered (src, dst) fragment pair carries
 * batched {vertex, edgeValue} delta messages, the Maiter-style compact
 * update stream: a fragment that commits a changed vertex sends the
 * vertex's *edge-carried* value once per remote fragment, and the
 * receiver fans it out to its mirror slots.  Each ring has exactly one
 * producer (the src fragment's runner) and one consumer (the dst
 * fragment's runner), so the wait-free SPSC protocol applies directly.
 *
 * Termination accounting follows the classic four-counter scheme
 * collapsed to shared memory: a global `sent` counter is bumped when a
 * message is *queued* (outbox append — an unflushed outbox still counts
 * as in-flight), `received` when the consumer has applied it.  The
 * detector in FragmentEngine declares quiescence only when
 * sent == received, every fragment reports idle, and a re-read of
 * `sent` shows no message was produced in between.
 */

#ifndef GRAPHABCD_FRAGMENT_MESSAGE_PLANE_HH
#define GRAPHABCD_FRAGMENT_MESSAGE_PLANE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fragment/topology.hh"
#include "graph/types.hh"
#include "runtime/spsc_ring.hh"
#include "support/logging.hh"

namespace graphabcd {

/**
 * One cross-fragment scatter update: "vertex changed; its edge-carried
 * value is now `value`".  State-carrying (not a difference), so applies
 * are idempotent and ordering within a ring is sufficient.
 */
template <typename Value>
struct DeltaMsg {
    VertexId vertex{};
    Value value{};
};

/**
 * F×F mesh of SPSC delta channels (diagonal unused) plus the global
 * sent/received termination counters.
 */
template <typename Value>
class MessagePlane
{
  public:
    using Msg = DeltaMsg<Value>;

    /** Channel state beyond the ring itself. */
    struct Channel {
        explicit Channel(std::size_t capacity) : ring(capacity) {}

        SpscRing<Msg> ring;
        /**
         * Producer-side stamp of the sender's block-update clock at the
         * last successful flush.  Consumer reads it (relaxed) to gauge
         * mirror staleness; stats only.
         */
        std::atomic<std::uint64_t> flushStamp{0};
    };

    MessagePlane(FragmentId fragments, std::size_t ring_capacity)
        : n(fragments)
    {
        GRAPHABCD_ASSERT(fragments > 0, "message plane needs a fragment");
        channels.resize(static_cast<std::size_t>(n) * n);
        for (FragmentId s = 0; s < n; s++)
            for (FragmentId d = 0; d < n; d++)
                if (s != d)
                    channels[index(s, d)] =
                        std::make_unique<Channel>(ring_capacity);
    }

    /** @return fragment count the plane was built for. */
    FragmentId numFragments() const { return n; }

    /** @return the src→dst channel; src != dst required. */
    Channel &
    channel(FragmentId src, FragmentId dst)
    {
        GRAPHABCD_ASSERT(src != dst, "no self channel");
        return *channels[index(src, dst)];
    }

    /**
     * Account messages queued for sending.  Must happen at outbox-append
     * time, *before* any ring push, so the detector can never observe
     * received catching up to a stale `sent`.
     */
    void
    noteSent(std::uint64_t k)
    {
        sentCount.fetch_add(k, std::memory_order_seq_cst);
    }

    /** Account messages fully applied by a consumer. */
    void
    noteReceived(std::uint64_t k)
    {
        receivedCount.fetch_add(k, std::memory_order_seq_cst);
    }

    std::uint64_t
    sent() const
    {
        return sentCount.load(std::memory_order_seq_cst);
    }

    std::uint64_t
    received() const
    {
        return receivedCount.load(std::memory_order_seq_cst);
    }

  private:
    std::size_t
    index(FragmentId src, FragmentId dst) const
    {
        return static_cast<std::size_t>(src) * n + dst;
    }

    FragmentId n;
    std::vector<std::unique_ptr<Channel>> channels;
    alignas(64) std::atomic<std::uint64_t> sentCount{0};
    alignas(64) std::atomic<std::uint64_t> receivedCount{0};
};

} // namespace graphabcd

#endif // GRAPHABCD_FRAGMENT_MESSAGE_PLANE_HH
